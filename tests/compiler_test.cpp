// Tests for the out-of-core compiler: access classification, the I/O cost
// estimator (Equations 3-6 and Figure 14), memory planning (§4.2.1),
// lowering decisions, and the pseudo-code renderer.
#include <gtest/gtest.h>

#include "oocc/compiler/access.hpp"
#include "oocc/compiler/cost.hpp"
#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/memplan.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/hpf/parser.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/hpf/sema.hpp"
#include "oocc/util/error.hpp"

namespace oocc::compiler {
namespace {

using runtime::SlabOrientation;

// ----------------------------------------------------------------- access

TEST(AccessTest, ClassifiesGaxpyReferences) {
  const hpf::BoundProgram bound =
      hpf::analyze(hpf::parse(hpf::gaxpy_source(64, 4)));
  const hpf::Stmt& outer = *bound.stmts[0];
  const hpf::Stmt& forall = *outer.body[0];
  const hpf::Stmt& inner = *forall.body[0];
  const LoopContext loops{"j", "k"};

  // temp(1:n, k)
  const RefAccess temp = classify_reference(
      *inner.lhs, bound.array("temp"), loops, bound.parameters, true);
  EXPECT_EQ(temp.row_class, SubscriptClass::kFullRange);
  EXPECT_EQ(temp.col_class, SubscriptClass::kForallIndex);
  EXPECT_TRUE(temp.outer_invariant());

  std::vector<RefAccess> refs;
  collect_references(*inner.rhs, bound, loops, false, refs);
  ASSERT_EQ(refs.size(), 2u);
  // b(k, j): forall-index row, outer-index column -> NOT outer-invariant.
  const RefAccess& b = refs[0].array == "b" ? refs[0] : refs[1];
  const RefAccess& a = refs[0].array == "a" ? refs[0] : refs[1];
  EXPECT_EQ(b.row_class, SubscriptClass::kForallIndex);
  EXPECT_EQ(b.col_class, SubscriptClass::kOuterIndex);
  EXPECT_FALSE(b.outer_invariant());
  // a(1:n, k): full rows, forall column -> outer-invariant (the waste the
  // reorganization eliminates).
  EXPECT_EQ(a.row_class, SubscriptClass::kFullRange);
  EXPECT_EQ(a.col_class, SubscriptClass::kForallIndex);
  EXPECT_TRUE(a.outer_invariant());
}

TEST(AccessTest, ConstantAndOtherClasses) {
  const hpf::BoundProgram bound = hpf::analyze(hpf::parse(
      "parameter (n=8)\n"
      "real a(n,n)\n"
      "do j=1,n\n"
      "  forall (k=1:n)\n"
      "    a(1:n,k) = a(3,k) * a(1:n,1)\n"
      "  end forall\n"
      "end do\n"
      "end\n"));
  const hpf::Stmt& inner = *bound.stmts[0]->body[0]->body[0];
  const LoopContext loops{"j", "k"};
  std::vector<RefAccess> refs;
  collect_references(*inner.rhs, bound, loops, false, refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].row_class, SubscriptClass::kConstant);  // a(3,k)
  EXPECT_EQ(refs[1].col_class, SubscriptClass::kConstant);  // a(1:n,1)
}

TEST(AccessTest, PartialRangeIsConstantRangeWithBounds) {
  const hpf::BoundProgram bound = hpf::analyze(hpf::parse(
      "parameter (n=8)\n"
      "real a(n,n)\n"
      "forall (k=1:n)\n"
      "  a(1:n,k) = a(2:4,k)\n"
      "end forall\n"
      "end\n"));
  const hpf::Stmt& inner = *bound.stmts[0]->body[0];
  const LoopContext loops{"", "k"};
  std::vector<RefAccess> refs;
  collect_references(*inner.rhs, bound, loops, false, refs);
  // Partial sections still reject from the full-range matchers, but the
  // stencil matcher needs their Fortran bounds.
  EXPECT_EQ(refs[0].row_class, SubscriptClass::kConstantRange);
  EXPECT_EQ(refs[0].row_lo, 2);
  EXPECT_EQ(refs[0].row_hi, 4);
}

TEST(AccessTest, ForallOffsetCarriesTheSignedDistance) {
  const hpf::BoundProgram bound = hpf::analyze(hpf::parse(
      "parameter (n=8)\n"
      "real a(n,n)\n"
      "forall (k=2:7)\n"
      "  a(1:n,k) = a(1:n,k-1) + a(1:n,k+2)\n"
      "end forall\n"
      "end\n"));
  const hpf::Stmt& inner = *bound.stmts[0]->body[0];
  const LoopContext loops{"", "k"};
  std::vector<RefAccess> refs;
  collect_references(*inner.rhs, bound, loops, false, refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].col_class, SubscriptClass::kForallOffset);
  EXPECT_EQ(refs[0].col_offset, -1);
  EXPECT_EQ(refs[1].col_class, SubscriptClass::kForallOffset);
  EXPECT_EQ(refs[1].col_offset, 2);
}

// ------------------------------------------------------------------- cost

TEST(CostTest, ColumnSlabMatchesEquations3And4) {
  // Paper's formulas with M elements per slab of A: T_fetch = N^3/(M P),
  // T_data = N^3/P.
  GaxpyCostQuery q;
  q.n = 1024;
  q.nprocs = 4;
  q.slab_a = 2 * 1024;  // two columns
  q.slab_b = 2 * 1024;
  q.slab_c = 2 * 1024;
  const CandidateCost cost =
      estimate_gaxpy_cost(SlabOrientation::kColumnSlabs, q);
  const double n = 1024.0;
  EXPECT_DOUBLE_EQ(cost.cost_of("a").fetch_requests,
                   n * n * n / (2048.0 * 4.0));
  EXPECT_DOUBLE_EQ(cost.cost_of("a").data_elements, n * n * n / 4.0);
  // B read once.
  EXPECT_DOUBLE_EQ(cost.cost_of("b").data_elements, n * n / 4.0);
}

TEST(CostTest, RowSlabMatchesEquations5And6) {
  GaxpyCostQuery q;
  q.n = 1024;
  q.nprocs = 4;
  q.slab_a = 2 * 1024;
  q.slab_b = 2 * 1024;
  q.slab_c = 2 * 1024;
  const CandidateCost cost = estimate_gaxpy_cost(SlabOrientation::kRowSlabs, q);
  const double n = 1024.0;
  EXPECT_DOUBLE_EQ(cost.cost_of("a").fetch_requests, n * n / (2048.0 * 4.0));
  EXPECT_DOUBLE_EQ(cost.cost_of("a").data_elements, n * n / 4.0);
}

TEST(CostTest, RowVersionOrderOfMagnitudeCheaper) {
  GaxpyCostQuery q;
  q.n = 1024;
  q.nprocs = 16;
  q.slab_a = q.slab_b = q.slab_c = 8 * 1024;
  const CandidateCost col = estimate_gaxpy_cost(SlabOrientation::kColumnSlabs, q);
  const CandidateCost row = estimate_gaxpy_cost(SlabOrientation::kRowSlabs, q);
  EXPECT_DOUBLE_EQ(col.cost_of("a").data_elements /
                       row.cost_of("a").data_elements,
                   1024.0);  // exactly N for square blocks
  EXPECT_GT(col.cost_of("a").fetch_requests,
            100.0 * row.cost_of("a").fetch_requests);
}

TEST(CostTest, UnreorganizedRowSlabsPayPerColumnExtents) {
  GaxpyCostQuery q;
  q.n = 64;
  q.nprocs = 4;
  q.slab_a = q.slab_b = q.slab_c = 4 * 64;
  q.storage_reorganized = false;
  const CandidateCost strided = estimate_gaxpy_cost(SlabOrientation::kRowSlabs, q);
  q.storage_reorganized = true;
  const CandidateCost contiguous =
      estimate_gaxpy_cost(SlabOrientation::kRowSlabs, q);
  // Without reorganization every row slab costs one extent per local
  // column (16 here).
  EXPECT_DOUBLE_EQ(strided.cost_of("a").fetch_requests,
                   16.0 * contiguous.cost_of("a").fetch_requests);
  // Data volume is unchanged.
  EXPECT_DOUBLE_EQ(strided.cost_of("a").data_elements,
                   contiguous.cost_of("a").data_elements);
}

TEST(CostTest, Figure14PicksRowSlabsAndExplainsWhy) {
  GaxpyCostQuery q;
  q.n = 1024;
  q.nprocs = 16;
  q.slab_a = q.slab_b = q.slab_c = 16 * 1024;
  const CostDecision decision =
      choose_access_reorganization(q, io::DiskModel::touchstone_delta_cfs());
  EXPECT_EQ(decision.dominant_array, "a");
  EXPECT_EQ(decision.chosen.a_orientation, SlabOrientation::kRowSlabs);
  EXPECT_EQ(decision.candidates.size(), 2u);
  EXPECT_NE(decision.rationale.find("row-slabs"), std::string::npos);
  EXPECT_NE(decision.rationale.find("dominant"), std::string::npos);
}

TEST(CostTest, EstimatedTimeUsesDiskModel) {
  GaxpyCostQuery q;
  q.n = 64;
  q.nprocs = 4;
  q.slab_a = q.slab_b = q.slab_c = 64 * 4;
  const CandidateCost cost = estimate_gaxpy_cost(SlabOrientation::kRowSlabs, q);
  io::DiskModel disk = io::DiskModel::unit_test();
  const double expected =
      cost.total_requests() * disk.request_overhead_s +
      cost.total_elements() * 8.0 / disk.effective_bandwidth(4);
  EXPECT_DOUBLE_EQ(cost.estimated_io_time_s(disk, 4), expected);
}

TEST(CostTest, TotalEstimatePredictsRowSlabWinOnDeltaHardware) {
  GaxpyCostQuery q;
  q.n = 512;
  q.nprocs = 4;
  q.slab_a = q.slab_b = q.slab_c = 512 * 32;
  const io::DiskModel disk = io::DiskModel::touchstone_delta_cfs();
  const sim::MachineCostModel machine =
      sim::MachineCostModel::touchstone_delta();
  const TotalCostEstimate col = estimate_gaxpy_total(
      SlabOrientation::kColumnSlabs, q, disk, machine);
  const TotalCostEstimate row =
      estimate_gaxpy_total(SlabOrientation::kRowSlabs, q, disk, machine);
  // Same compute; far less I/O for the row version; ordering must hold.
  EXPECT_DOUBLE_EQ(col.compute_s, row.compute_s);
  EXPECT_GT(col.io_s, 10 * row.io_s);
  EXPECT_LT(row.total_s(), col.total_s());
  // Components are all positive and total is their sum.
  EXPECT_GT(row.comm_s, 0.0);
  EXPECT_DOUBLE_EQ(row.total_s(), row.io_s + row.compute_s + row.comm_s);
}

TEST(CostTest, DecisionReportIncludesPredictedTotals) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  const NodeProgram plan = compile_source(hpf::gaxpy_source(256, 4), options);
  ASSERT_EQ(plan.cost.candidate_total_s.size(), 2u);
  EXPECT_GT(plan.cost.candidate_total_s[0], plan.cost.candidate_total_s[1]);
  const std::string report = decision_report(plan);
  EXPECT_NE(report.find("predicted_total"), std::string::npos);
}

TEST(CostTest, MachineModelChangesPredictionsNotTheChoice) {
  // A faster CPU changes the predicted totals but the Figure 14 decision
  // is made on I/O alone, so the orientation must be stable.
  CompileOptions slow;
  slow.memory_budget_elements = 1 << 16;
  CompileOptions fast = slow;
  fast.machine.compute.seconds_per_flop = 1e-12;
  const NodeProgram a = compile_source(hpf::gaxpy_source(256, 4), slow);
  const NodeProgram b = compile_source(hpf::gaxpy_source(256, 4), fast);
  EXPECT_EQ(a.a_orientation, b.a_orientation);
  ASSERT_EQ(a.cost.candidate_total_s.size(), 2u);
  ASSERT_EQ(b.cost.candidate_total_s.size(), 2u);
  EXPECT_GT(a.cost.candidate_total_s[1], b.cost.candidate_total_s[1]);
}

TEST(CostTest, QueryValidation) {
  GaxpyCostQuery q;
  q.n = 0;
  EXPECT_THROW(estimate_gaxpy_cost(SlabOrientation::kRowSlabs, q), Error);
  q.n = 8;
  q.slab_a = 0;
  q.slab_b = q.slab_c = 8;
  EXPECT_THROW(estimate_gaxpy_cost(SlabOrientation::kRowSlabs, q), Error);
}

// ---------------------------------------------------------------- memplan

TEST(MemplanTest, EqualSplitDividesSpareEvenly) {
  const MemoryPlan plan = plan_memory(MemoryStrategy::kEqualSplit, 100000,
                                      256, 4, SlabOrientation::kColumnSlabs);
  EXPECT_EQ(plan.temp_elements, 256);
  // Floors: a=256, b=64, c=256, temp=256 -> spare split 3 ways.
  const std::int64_t spare = (100000 - (256 + 64 + 256 + 256)) / 3;
  EXPECT_EQ(plan.slab_a, 256 + spare);
  EXPECT_EQ(plan.slab_b, 64 + spare);
  EXPECT_EQ(plan.slab_c, 256 + spare);
  EXPECT_LE(plan.total(), 100000);
}

TEST(MemplanTest, WeightedGivesDominantArrayTheLargestSlab) {
  // Budget below A's OCLA size so the cap does not engage.
  const MemoryPlan plan =
      plan_memory(MemoryStrategy::kAccessWeighted, 30000, 512, 4,
                  SlabOrientation::kColumnSlabs);
  // A is the most frequently accessed array (T_fetch scales with 1/slab_a
  // at N re-sweeps): the search must give it the largest share.
  EXPECT_GT(plan.slab_a, plan.slab_b);
  EXPECT_GT(plan.slab_a, plan.slab_c);
  EXPECT_GT(plan.slab_a, 30000 / 2);  // majority of the budget
  EXPECT_LE(plan.total(), 30000);
}

TEST(MemplanTest, WeightedNeverPredictsWorseThanEqualSplit) {
  const io::DiskModel disk = io::DiskModel::touchstone_delta_cfs();
  for (SlabOrientation orient :
       {SlabOrientation::kColumnSlabs, SlabOrientation::kRowSlabs}) {
    for (std::int64_t budget : {4000LL, 30000LL, 200000LL}) {
      const MemoryPlan equal = plan_memory(MemoryStrategy::kEqualSplit,
                                           budget, 512, 4, orient, disk);
      const MemoryPlan weighted = plan_memory(
          MemoryStrategy::kAccessWeighted, budget, 512, 4, orient, disk);
      auto predict = [&](const MemoryPlan& p) {
        GaxpyCostQuery q;
        q.n = 512;
        q.nprocs = 4;
        q.slab_a = p.slab_a;
        q.slab_b = p.slab_b;
        q.slab_c = p.slab_c;
        return estimate_gaxpy_cost(orient, q).estimated_io_time_s(disk, 4);
      };
      EXPECT_LE(predict(weighted), predict(equal) * 1.0001)
          << "orient=" << static_cast<int>(orient) << " budget=" << budget;
    }
  }
}

TEST(MemplanTest, WeightedWithLargeBudgetCapsAtOclaSize) {
  // With more memory than the OCLA, the dominant slab is the whole local
  // array (slab ratio 1) — exactly the paper's best configuration.
  const MemoryPlan plan =
      plan_memory(MemoryStrategy::kAccessWeighted, 100000, 256, 4,
                  SlabOrientation::kColumnSlabs);
  EXPECT_EQ(plan.slab_a, 256 * 64);
  EXPECT_LE(plan.total(), 100000);
}

TEST(MemplanTest, SlabsCappedAtLocalArraySize) {
  // Huge budget: slabs must not exceed the OCLA sizes.
  const MemoryPlan plan =
      plan_memory(MemoryStrategy::kAccessWeighted, 1 << 28, 64, 4,
                  SlabOrientation::kRowSlabs);
  EXPECT_LE(plan.slab_a, 64 * 16);
  EXPECT_LE(plan.slab_b, 64 * 16);
  EXPECT_LE(plan.slab_c, 64 * 16);
}

TEST(MemplanTest, InsufficientBudgetThrows) {
  try {
    plan_memory(MemoryStrategy::kEqualSplit, 100, 256, 4,
                SlabOrientation::kColumnSlabs);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
}

// ------------------------------------------------------------------ lower

TEST(LowerTest, CompilesFigure3ToRowSlabPlan) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  const NodeProgram plan = compile_source(hpf::gaxpy_source(256, 4), options);
  EXPECT_EQ(plan.kind, ProgramKind::kGaxpy);
  EXPECT_EQ(plan.nprocs, 4);
  EXPECT_EQ(plan.n, 256);
  EXPECT_EQ(plan.a, "a");
  EXPECT_EQ(plan.b, "b");
  EXPECT_EQ(plan.c, "c");
  // The optimizer must pick row slabs (order-of-magnitude less I/O).
  EXPECT_EQ(plan.a_orientation, SlabOrientation::kRowSlabs);
  // Storage reorganization: A and C row-major, B stays column-major.
  EXPECT_EQ(plan.array("a").storage, io::StorageOrder::kRowMajor);
  EXPECT_TRUE(plan.array("a").needs_storage_reorganization);
  EXPECT_EQ(plan.array("b").storage, io::StorageOrder::kColumnMajor);
  EXPECT_EQ(plan.array("c").storage, io::StorageOrder::kRowMajor);
  EXPECT_EQ(plan.cost.dominant_array, "a");
  EXPECT_EQ(plan.cost.candidates.size(), 2u);
}

TEST(LowerTest, AblationForcesColumnSlabs) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  options.enable_access_reorganization = false;
  const NodeProgram plan = compile_source(hpf::gaxpy_source(256, 4), options);
  EXPECT_EQ(plan.a_orientation, SlabOrientation::kColumnSlabs);
  EXPECT_EQ(plan.array("a").storage, io::StorageOrder::kColumnMajor);
  EXPECT_NE(plan.cost.rationale.find("disabled"), std::string::npos);
}

TEST(LowerTest, StorageReorganizationCanBeDisabled) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  options.enable_storage_reorganization = false;
  const NodeProgram plan = compile_source(hpf::gaxpy_source(256, 4), options);
  // Everything stays column-major even if row slabs were chosen.
  EXPECT_EQ(plan.array("a").storage, io::StorageOrder::kColumnMajor);
  EXPECT_FALSE(plan.array("a").needs_storage_reorganization);
}

TEST(LowerTest, PrefetchHalvesDominantSlab) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  const NodeProgram base = compile_source(hpf::gaxpy_source(256, 4), options);
  options.prefetch = PrefetchMode::kOn;
  const NodeProgram pf = compile_source(hpf::gaxpy_source(256, 4), options);
  EXPECT_TRUE(pf.prefetch);
  EXPECT_LE(pf.memory.slab_a, base.memory.slab_a / 2 + 64);
}

TEST(LowerTest, AcceptsOperandOrderVariants) {
  // a(1:n,k)*b(k,j) instead of b(k,j)*a(1:n,k).
  const std::string src =
      "parameter (n=64, p=4)\n"
      "real a(n,n), b(n,n), c(n,n), temp(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: a, c, temp\n"
      "!hpf$ align (:,*) with d :: b\n"
      "do j=1, n\n"
      "  forall (k=1:n)\n"
      "    temp(1:n,k) = a(1:n,k)*b(k,j)\n"
      "  end forall\n"
      "  c(1:n,j) = SUM(temp,2)\n"
      "end do\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  const NodeProgram plan = compile_source(src, options);
  EXPECT_EQ(plan.a, "a");
  EXPECT_EQ(plan.b, "b");
}

TEST(LowerTest, CompilesCyclicGaxpy) {
  // The paper's program with CYCLIC instead of BLOCK distribution.
  const std::string src =
      "parameter (n=64, p=4)\n"
      "real a(n,n), b(n,n), c(n,n), temp(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(cyclic) onto Pr\n"
      "!hpf$ align (*,:) with d :: a, c, temp\n"
      "!hpf$ align (:,*) with d :: b\n"
      "do j=1, n\n"
      "  forall (k=1:n)\n"
      "    temp(1:n,k) = b(k,j)*a(1:n,k)\n"
      "  end forall\n"
      "  c(1:n,j) = SUM(temp,2)\n"
      "end do\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  const NodeProgram plan = compile_source(src, options);
  EXPECT_EQ(plan.kind, ProgramKind::kGaxpy);
  EXPECT_EQ(plan.array("a").dist.col_dist().kind(), hpf::DistKind::kCyclic);
  EXPECT_EQ(plan.a_orientation, SlabOrientation::kRowSlabs);
}

TEST(LowerTest, RejectsMixedDistributionKinds) {
  // A cyclic but B block: the local-index correspondence breaks.
  const std::string src =
      "parameter (n=64, p=4)\n"
      "real a(n,n), b(n,n), c(n,n), temp(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d1(n)\n"
      "!hpf$ template d2(n)\n"
      "!hpf$ distribute d1(cyclic) onto Pr\n"
      "!hpf$ distribute d2(block) onto Pr\n"
      "!hpf$ align (*,:) with d1 :: a, c, temp\n"
      "!hpf$ align (:,*) with d2 :: b\n"
      "do j=1, n\n"
      "  forall (k=1:n)\n"
      "    temp(1:n,k) = b(k,j)*a(1:n,k)\n"
      "  end forall\n"
      "  c(1:n,j) = SUM(temp,2)\n"
      "end do\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  try {
    compile_source(src, options);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCompileError);
    EXPECT_NE(std::string(e.what()).find("share one distribution"),
              std::string::npos);
  }
}

TEST(LowerTest, NormalizesArrayAssignmentToForall) {
  // HPF array syntax without an explicit FORALL (§3.2 footnote).
  const std::string src =
      "parameter (n=16, p=2)\n"
      "real x(n,n), y(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y\n"
      "y(1:n,1:n) = x(1:n,1:n)*2 + 1\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 1 << 14;
  const NodeProgram plan = compile_source(src, options);
  EXPECT_EQ(plan.kind, ProgramKind::kElementwise);
  ASSERT_EQ(plan.statements.size(), 1u);
  EXPECT_EQ(plan.statements.front().lhs, "y");
  EXPECT_EQ(plan.elementwise_cols, 16);
}

TEST(LowerTest, ArrayAssignmentWithColonSections) {
  const std::string src =
      "parameter (n=16, p=2)\n"
      "real x(n,n), y(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y\n"
      "y(:,:) = x(:,:) - 3\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 1 << 14;
  const NodeProgram plan = compile_source(src, options);
  EXPECT_EQ(plan.kind, ProgramKind::kElementwise);
}

TEST(LowerTest, PartialSectionAssignmentRejected) {
  const std::string src =
      "parameter (n=16, p=2)\n"
      "real x(n,n), y(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y\n"
      "y(1:n,2:5) = x(1:n,2:5)\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 1 << 14;
  EXPECT_THROW(compile_source(src, options), Error);
}

TEST(LowerTest, CompilesElementwiseForall) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 14;
  const NodeProgram plan =
      compile_source(hpf::elementwise_source(32, 32, 4, 3), options);
  EXPECT_EQ(plan.kind, ProgramKind::kElementwise);
  ASSERT_EQ(plan.statements.size(), 1u);
  EXPECT_EQ(plan.statements.front().lhs, "y");
  EXPECT_EQ(plan.statements.front().forall_var, "k");
  EXPECT_EQ(plan.arrays.size(), 2u);
  EXPECT_TRUE(plan.array("y").is_output);
  EXPECT_FALSE(plan.array("x").is_output);
}

TEST(LowerTest, CompileErrorsAreSpecific) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;

  // Unsupported pattern: two top-level loops.
  const std::string two_loops =
      "real a(8,8)\n"
      "do j=1,8\n"
      "end do\n"
      "do i=1,8\n"
      "end do\n"
      "end\n";
  EXPECT_THROW(compile_source(two_loops, options), Error);

  // Elementwise with mismatched distributions.
  const std::string mismatched =
      "parameter (n=8, p=2)\n"
      "real x(n,n), y(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: y\n"
      "!hpf$ align (:,*) with d :: x\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = x(1:n,k)\n"
      "end forall\n"
      "end\n";
  try {
    compile_source(mismatched, options);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCompileError);
    EXPECT_NE(std::string(e.what()).find("identically distributed"),
              std::string::npos);
  }

  // Budget too small for one column per array.
  CompileOptions tiny = options;
  tiny.memory_budget_elements = 8;
  EXPECT_THROW(compile_source(hpf::gaxpy_source(256, 4), tiny), Error);
}

// ----------------------------------------------------------------- pretty

TEST(PrettyTest, RowSlabPseudoCodeShowsReorganizedStructure) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  const NodeProgram plan = compile_source(hpf::gaxpy_source(256, 4), options);
  const std::string code = pseudo_code(plan);
  EXPECT_NE(code.find("row slab"), std::string::npos);
  EXPECT_NE(code.find("fetched exactly once"), std::string::npos);
  EXPECT_NE(code.find("GLOBAL_SUM"), std::string::npos);
  EXPECT_NE(code.find("REORGANIZE_STORAGE"), std::string::npos);
}

TEST(PrettyTest, ColumnSlabPseudoCodeShowsRereads) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  options.enable_access_reorganization = false;
  const NodeProgram plan = compile_source(hpf::gaxpy_source(256, 4), options);
  const std::string code = pseudo_code(plan);
  EXPECT_NE(code.find("re-read every output column"), std::string::npos);
}

TEST(PrettyTest, DecisionReportListsCandidates) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  const NodeProgram plan = compile_source(hpf::gaxpy_source(256, 4), options);
  const std::string report = decision_report(plan);
  EXPECT_NE(report.find("column-slabs"), std::string::npos);
  EXPECT_NE(report.find("row-slabs"), std::string::npos);
  EXPECT_NE(report.find("T_fetch"), std::string::npos);
  EXPECT_NE(report.find("access-weighted"), std::string::npos);
}

TEST(PrettyTest, ElementwisePseudoCode) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 14;
  const NodeProgram plan =
      compile_source(hpf::elementwise_source(32, 32, 4, 3), options);
  const std::string code = pseudo_code(plan);
  EXPECT_NE(code.find("READ_ICLA(x"), std::string::npos);
  EXPECT_NE(code.find("WRITE_ICLA(y"), std::string::npos);
}

}  // namespace
}  // namespace oocc::compiler
