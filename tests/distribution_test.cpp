// Tests for the HPF distribution algebra, including property-style checks
// over randomized BLOCK / CYCLIC / BLOCK-CYCLIC configurations.
#include <gtest/gtest.h>

#include "oocc/hpf/distribution.hpp"
#include "oocc/util/error.hpp"
#include "oocc/util/rng.hpp"

namespace oocc::hpf {
namespace {

TEST(DimDistributionTest, BlockBasics) {
  // 64 elements over 4 procs: blocks of 16.
  DimDistribution d(DistKind::kBlock, 64, 4);
  EXPECT_EQ(d.block(), 16);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(15), 0);
  EXPECT_EQ(d.owner(16), 1);
  EXPECT_EQ(d.owner(63), 3);
  EXPECT_EQ(d.global_to_local(17), 1);
  EXPECT_EQ(d.local_to_global(2, 3), 35);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(d.local_extent(p), 16);
  }
}

TEST(DimDistributionTest, BlockUneven) {
  // 10 over 4: ceil = 3 -> extents 3,3,3,1.
  DimDistribution d(DistKind::kBlock, 10, 4);
  EXPECT_EQ(d.local_extent(0), 3);
  EXPECT_EQ(d.local_extent(3), 1);
  EXPECT_EQ(d.owner(9), 3);
  EXPECT_EQ(d.global_to_local(9), 0);
}

TEST(DimDistributionTest, CyclicBasics) {
  DimDistribution d(DistKind::kCyclic, 10, 3);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(4), 1);
  EXPECT_EQ(d.global_to_local(7), 2);  // 7 = 2*3 + 1 -> local 2 on proc 1
  EXPECT_EQ(d.local_to_global(1, 2), 7);
  EXPECT_EQ(d.local_extent(0), 4);  // 0,3,6,9
  EXPECT_EQ(d.local_extent(1), 3);  // 1,4,7
  EXPECT_EQ(d.local_extent(2), 3);  // 2,5,8
}

TEST(DimDistributionTest, BlockCyclicBasics) {
  // Blocks of 2 over 2 procs, extent 10:
  // p0: 0,1, 4,5, 8,9 ; p1: 2,3, 6,7.
  DimDistribution d(DistKind::kBlockCyclic, 10, 2, 2);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(3), 1);
  EXPECT_EQ(d.owner(4), 0);
  EXPECT_EQ(d.local_extent(0), 6);
  EXPECT_EQ(d.local_extent(1), 4);
  EXPECT_EQ(d.global_to_local(6), 2);
  EXPECT_EQ(d.local_to_global(1, 3), 7);
}

TEST(DimDistributionTest, CollapsedIsUniversal) {
  DimDistribution d(DistKind::kCollapsed, 12, 4);
  EXPECT_FALSE(d.distributed());
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(d.local_extent(p), 12);
    EXPECT_TRUE(d.owns(p, 11));
  }
  EXPECT_EQ(d.global_to_local(7), 7);
  EXPECT_EQ(d.local_to_global(2, 7), 7);
}

TEST(DimDistributionTest, BoundsChecked) {
  DimDistribution d(DistKind::kBlock, 8, 2);
  EXPECT_THROW(d.owner(8), Error);
  EXPECT_THROW(d.owner(-1), Error);
  EXPECT_THROW(d.local_extent(2), Error);
  EXPECT_THROW(d.local_to_global(0, 4), Error);
  EXPECT_THROW(DimDistribution(DistKind::kBlock, 0, 2), Error);
  EXPECT_THROW(DimDistribution(DistKind::kBlockCyclic, 8, 2, 0), Error);
}

struct DistCase {
  DistKind kind;
  std::int64_t extent;
  int nprocs;
  std::int64_t block;
};

class DimDistributionProperty : public ::testing::TestWithParam<DistCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, DimDistributionProperty,
    ::testing::Values(DistCase{DistKind::kBlock, 64, 4, 0},
                      DistCase{DistKind::kBlock, 100, 7, 0},
                      DistCase{DistKind::kBlock, 5, 5, 0},
                      DistCase{DistKind::kCyclic, 64, 4, 0},
                      DistCase{DistKind::kCyclic, 101, 8, 0},
                      DistCase{DistKind::kBlockCyclic, 64, 4, 4},
                      DistCase{DistKind::kBlockCyclic, 97, 5, 3},
                      DistCase{DistKind::kBlockCyclic, 32, 2, 32},
                      DistCase{DistKind::kCollapsed, 50, 6, 0}));

TEST_P(DimDistributionProperty, RoundTripAndPartition) {
  const DistCase c = GetParam();
  DimDistribution d(c.kind, c.extent, c.nprocs, c.block);

  // (1) Every global index round-trips through (owner, local).
  for (std::int64_t g = 0; g < c.extent; ++g) {
    const int p = d.owner(g);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, c.nprocs);
    EXPECT_TRUE(d.owns(p, g));
    const std::int64_t l = d.global_to_local(g);
    ASSERT_GE(l, 0);
    ASSERT_LT(l, d.local_extent(p));
    EXPECT_EQ(d.local_to_global(p, l), g);
  }

  // (2) Local extents sum to the global extent (for distributed kinds) —
  // the local pieces tile the dimension exactly.
  if (c.kind != DistKind::kCollapsed) {
    std::int64_t total = 0;
    for (int p = 0; p < c.nprocs; ++p) {
      total += d.local_extent(p);
    }
    EXPECT_EQ(total, c.extent);
  }

  // (3) local_to_global is injective across (proc, local).
  if (c.kind != DistKind::kCollapsed) {
    std::vector<bool> seen(static_cast<std::size_t>(c.extent), false);
    for (int p = 0; p < c.nprocs; ++p) {
      for (std::int64_t l = 0; l < d.local_extent(p); ++l) {
        const std::int64_t g = d.local_to_global(p, l);
        EXPECT_FALSE(seen[static_cast<std::size_t>(g)]);
        seen[static_cast<std::size_t>(g)] = true;
      }
    }
  }
}

TEST(DimDistributionProperty, RandomizedConfigurations) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t extent = rng.next_int(1, 300);
    const int nprocs = static_cast<int>(rng.next_int(1, 16));
    const int kind_pick = static_cast<int>(rng.next_int(0, 2));
    DistKind kind = kind_pick == 0   ? DistKind::kBlock
                    : kind_pick == 1 ? DistKind::kCyclic
                                     : DistKind::kBlockCyclic;
    const std::int64_t block = rng.next_int(1, 8);
    DimDistribution d(kind, extent, nprocs, block);
    std::int64_t total = 0;
    for (int p = 0; p < nprocs; ++p) {
      total += d.local_extent(p);
    }
    ASSERT_EQ(total, extent) << "kind=" << static_cast<int>(kind)
                             << " extent=" << extent << " P=" << nprocs;
    for (int probe = 0; probe < 20; ++probe) {
      const std::int64_t g = rng.next_int(0, extent - 1);
      const int p = d.owner(g);
      ASSERT_EQ(d.local_to_global(p, d.global_to_local(g)), g);
    }
  }
}

TEST(DimDistributionProperty, BlockCyclicDegeneratesToBlockAndCyclic) {
  // CYCLIC(1) == CYCLIC and CYCLIC(ceil(N/P)) == BLOCK, elementwise.
  for (const auto& [extent, nprocs] :
       std::vector<std::pair<std::int64_t, int>>{
           {64, 4}, {100, 7}, {13, 13}, {96, 5}}) {
    const DimDistribution cyclic(DistKind::kCyclic, extent, nprocs);
    const DimDistribution bc1(DistKind::kBlockCyclic, extent, nprocs, 1);
    const std::int64_t ceil_block = (extent + nprocs - 1) / nprocs;
    const DimDistribution block(DistKind::kBlock, extent, nprocs);
    const DimDistribution bcb(DistKind::kBlockCyclic, extent, nprocs,
                              ceil_block);
    for (std::int64_t g = 0; g < extent; ++g) {
      ASSERT_EQ(bc1.owner(g), cyclic.owner(g)) << "g=" << g;
      ASSERT_EQ(bc1.global_to_local(g), cyclic.global_to_local(g));
      ASSERT_EQ(bcb.owner(g), block.owner(g)) << "g=" << g;
      ASSERT_EQ(bcb.global_to_local(g), block.global_to_local(g));
    }
    for (int proc = 0; proc < nprocs; ++proc) {
      ASSERT_EQ(bc1.local_extent(proc), cyclic.local_extent(proc));
      ASSERT_EQ(bcb.local_extent(proc), block.local_extent(proc));
    }
  }
}

TEST(DimDistributionProperty, GlobalToLocalIsMonotonicOnOwnedSets) {
  // The GAXPY kernels' OwnedColumnWriter relies on this: a processor's
  // owned global indices, taken in increasing order, map to consecutive
  // local indices 0, 1, 2, ...
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int64_t extent = rng.next_int(1, 200);
    const int nprocs = static_cast<int>(rng.next_int(1, 9));
    const int kind_pick = static_cast<int>(rng.next_int(0, 2));
    const DistKind kind = kind_pick == 0   ? DistKind::kBlock
                          : kind_pick == 1 ? DistKind::kCyclic
                                           : DistKind::kBlockCyclic;
    const DimDistribution d(kind, extent, nprocs, rng.next_int(1, 6));
    std::vector<std::int64_t> next_local(static_cast<std::size_t>(nprocs),
                                         0);
    for (std::int64_t g = 0; g < extent; ++g) {
      const int owner = d.owner(g);
      ASSERT_EQ(d.global_to_local(g),
                next_local[static_cast<std::size_t>(owner)]++)
          << "kind=" << static_cast<int>(kind) << " g=" << g;
    }
  }
}

// ---------------------------------------------------------------------
// Ownership runs (the block routing layer's foundation)

TEST(OwnerRunsTest, BlockRunsFollowProcessorBoundaries) {
  // 10 over 4: blocks 3,3,3,1 — non-divisible extent.
  DimDistribution d(DistKind::kBlock, 10, 4);
  const std::vector<OwnerRun> runs = d.owner_runs(0, 10);
  ASSERT_EQ(runs.size(), 4u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].owner, static_cast<int>(i));
  }
  EXPECT_EQ(runs[0].g0, 0);
  EXPECT_EQ(runs[0].g1, 3);
  EXPECT_EQ(runs[2].g1, 9);
  EXPECT_EQ(runs[3].g0, 9);
  EXPECT_EQ(runs[3].g1, 10);  // final short run clamped to the extent
}

TEST(OwnerRunsTest, SubRangeClipsRunsAtBothEnds) {
  DimDistribution d(DistKind::kBlock, 16, 4);  // blocks of 4
  const std::vector<OwnerRun> runs = d.owner_runs(3, 13);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].g0, 3);
  EXPECT_EQ(runs[0].g1, 4);  // tail of proc 0's block
  EXPECT_EQ(runs[1].g0, 4);
  EXPECT_EQ(runs[1].g1, 8);
  EXPECT_EQ(runs[3].g0, 12);
  EXPECT_EQ(runs[3].g1, 13);  // head of proc 3's block
}

TEST(OwnerRunsTest, CyclicDegeneratesToUnitRuns) {
  DimDistribution d(DistKind::kCyclic, 7, 3);
  const std::vector<OwnerRun> runs = d.owner_runs(0, 7);
  ASSERT_EQ(runs.size(), 7u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].g1 - runs[i].g0, 1);
    EXPECT_EQ(runs[i].owner, static_cast<int>(i % 3));
  }
  EXPECT_EQ(d.run_length_hint(), 1);
}

TEST(OwnerRunsTest, BlockCyclicRunsArePeriodicBlocks) {
  // BLOCK-CYCLIC(2), extent 10, P = 2: blocks dealt 0,1,0,1,0.
  DimDistribution d(DistKind::kBlockCyclic, 10, 2, 2);
  const std::vector<OwnerRun> runs = d.owner_runs(0, 10);
  ASSERT_EQ(runs.size(), 5u);
  const int expected_owner[] = {0, 1, 0, 1, 0};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].g0, static_cast<std::int64_t>(2 * i));
    EXPECT_EQ(runs[i].g1, static_cast<std::int64_t>(2 * i + 2));
    EXPECT_EQ(runs[i].owner, expected_owner[i]);
  }
  // Period boundary inside the range: a run straddling `begin` is clipped.
  const std::vector<OwnerRun> mid = d.owner_runs(3, 7);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0].g0, 3);
  EXPECT_EQ(mid[0].g1, 4);
  EXPECT_EQ(mid[0].owner, 1);
  EXPECT_EQ(mid[2].g0, 6);
  EXPECT_EQ(mid[2].g1, 7);
  EXPECT_EQ(mid[2].owner, 1);
}

TEST(OwnerRunsTest, CollapsedIsOneRun) {
  DimDistribution d(DistKind::kCollapsed, 9, 4);
  const std::vector<OwnerRun> runs = d.owner_runs(0, 9);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].g0, 0);
  EXPECT_EQ(runs[0].g1, 9);
  EXPECT_EQ(runs[0].owner, 0);
  EXPECT_EQ(d.run_length_hint(), 9);
}

TEST(OwnerRunsTest, SingleProcessorCollapsesToOneRun) {
  // Every kind with P = 1 owns everything contiguously.
  for (DistKind kind : {DistKind::kBlock, DistKind::kCyclic,
                        DistKind::kBlockCyclic}) {
    DimDistribution d(kind, 12, 1, 3);
    const std::vector<OwnerRun> runs = d.owner_runs(0, 12);
    ASSERT_EQ(runs.size(), 1u) << dist_kind_name(kind);
    EXPECT_EQ(runs[0].owner, 0);
    EXPECT_GE(d.run_length_hint(), 2);
  }
}

TEST(OwnerRunsTest, EmptyRangeYieldsNoRuns) {
  DimDistribution d(DistKind::kBlock, 8, 2);
  EXPECT_TRUE(d.owner_runs(3, 3).empty());
  EXPECT_THROW(d.owner_runs(3, 2), Error);
  EXPECT_THROW(d.owner_runs(0, 9), Error);
}

TEST(OwnerRunsTest, RunsPartitionAndAgreeWithOwnerEverywhere) {
  // Property: for every kind and a non-divisible extent, the runs tile
  // [0, N) exactly, agree with owner(), and map to consecutive local
  // indices within each run.
  for (DistKind kind : {DistKind::kBlock, DistKind::kCyclic,
                        DistKind::kBlockCyclic, DistKind::kCollapsed}) {
    DimDistribution d(kind, 23, 3, 4);
    std::int64_t expect_next = 0;
    for (const OwnerRun& run : d.owner_runs(0, 23)) {
      EXPECT_EQ(run.g0, expect_next) << dist_kind_name(kind);
      EXPECT_LT(run.g0, run.g1);
      for (std::int64_t g = run.g0; g < run.g1; ++g) {
        EXPECT_EQ(d.owner(g), run.owner) << dist_kind_name(kind) << " g=" << g;
        if (g > run.g0) {
          EXPECT_EQ(d.global_to_local(g), d.global_to_local(g - 1) + 1)
              << dist_kind_name(kind) << " g=" << g;
        }
      }
      expect_next = run.g1;
    }
    EXPECT_EQ(expect_next, 23) << dist_kind_name(kind);
  }
}

TEST(OwnerRunsTest, LocalRunEndMatchesGlobalContiguity) {
  // Property: [l, local_run_end(l)) maps to consecutive globals, and the
  // run is maximal (the next local index, if any, breaks contiguity).
  for (DistKind kind : {DistKind::kBlock, DistKind::kCyclic,
                        DistKind::kBlockCyclic, DistKind::kCollapsed}) {
    DimDistribution d(kind, 23, 3, 4);
    for (int proc = 0; proc < 3; ++proc) {
      const std::int64_t n = d.local_extent(proc);
      for (std::int64_t l = 0; l < n;) {
        const std::int64_t e = d.local_run_end(proc, l);
        ASSERT_GT(e, l);
        for (std::int64_t i = l + 1; i < e; ++i) {
          EXPECT_EQ(d.local_to_global(proc, i),
                    d.local_to_global(proc, i - 1) + 1)
              << dist_kind_name(kind) << " proc=" << proc << " l=" << i;
        }
        if (e < n) {
          EXPECT_NE(d.local_to_global(proc, e),
                    d.local_to_global(proc, e - 1) + 1)
              << dist_kind_name(kind) << " run not maximal at l=" << l;
        }
        l = e;
      }
    }
  }
}

TEST(ArrayDistributionTest, ColumnBlockMatchesPaperExample) {
  // Figure 8: 8x8 array over 4 processors, column-block.
  ArrayDistribution d = column_block(8, 8, 4);
  EXPECT_EQ(d.axis(), DistAxis::kCols);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(d.local_rows(p), 8);
    EXPECT_EQ(d.local_cols(p), 2);
    EXPECT_EQ(d.local_elements(p), 16);
  }
  EXPECT_EQ(d.owner_of_col(0), 0);
  EXPECT_EQ(d.owner_of_col(5), 2);
  EXPECT_EQ(d.owner(3, 5), 2);
  EXPECT_EQ(d.global_to_local_col(5), 1);
  EXPECT_EQ(d.local_to_global_col(2, 1), 5);
  EXPECT_EQ(d.global_to_local_row(3), 3);
}

TEST(ArrayDistributionTest, RowBlockMatchesPaperExample) {
  ArrayDistribution d = row_block(8, 8, 4);
  EXPECT_EQ(d.axis(), DistAxis::kRows);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(d.local_rows(p), 2);
    EXPECT_EQ(d.local_cols(p), 8);
  }
  EXPECT_EQ(d.owner_of_row(7), 3);
  EXPECT_EQ(d.owner(7, 0), 3);
}

TEST(ArrayDistributionTest, ReplicatedOwnsEverywhere) {
  ArrayDistribution d(4, 4, DistAxis::kNone, DistKind::kCollapsed, 3);
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(d.owns(p, 2, 3));
    EXPECT_EQ(d.local_elements(p), 16);
  }
  EXPECT_EQ(d.owner(2, 3), 0);
}

TEST(ArrayDistributionTest, EqualityAndToString) {
  ArrayDistribution a = column_block(16, 16, 4);
  ArrayDistribution b = column_block(16, 16, 4);
  ArrayDistribution c = row_block(16, 16, 4);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.to_string().find("BLOCK"), std::string::npos);
  EXPECT_NE(a.to_string().find("cols"), std::string::npos);
}

}  // namespace
}  // namespace oocc::hpf
