// End-to-end tests: HPF source -> compile -> execute on the simulated
// machine -> verify against serial references, including exact agreement
// between the compiler's predicted I/O costs and the measured counters.
#include <gtest/gtest.h>

#include <cmath>

#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/gaxpy/gaxpy.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc::exec {
namespace {

using compiler::CompileOptions;
using compiler::NodeProgram;
using io::DiskModel;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

double gen_a(std::int64_t r, std::int64_t c) {
  return std::sin(static_cast<double>(r * 17 + c * 5)) + 1.5;
}

double gen_b(std::int64_t r, std::int64_t c) {
  return std::cos(static_cast<double>(r * 7 + c * 11)) - 0.25;
}

std::vector<double> dense(std::int64_t n, double (*f)(std::int64_t,
                                                      std::int64_t)) {
  std::vector<double> m(static_cast<std::size_t>(n * n));
  for (std::int64_t c = 0; c < n; ++c) {
    for (std::int64_t r = 0; r < n; ++r) {
      m[static_cast<std::size_t>(c * n + r)] = f(r, c);
    }
  }
  return m;
}

struct EndToEndCase {
  int nprocs;
  std::int64_t n;
  bool reorganize;  ///< enable_access_reorganization
};

class CompiledGaxpy : public ::testing::TestWithParam<EndToEndCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompiledGaxpy,
    ::testing::Values(EndToEndCase{1, 8, true}, EndToEndCase{2, 16, true},
                      EndToEndCase{4, 16, true}, EndToEndCase{4, 32, true},
                      EndToEndCase{2, 16, false}, EndToEndCase{4, 32, false}),
    [](const ::testing::TestParamInfo<EndToEndCase>& info) {
      return std::string("p") + std::to_string(info.param.nprocs) + "_n" +
             std::to_string(info.param.n) +
             (info.param.reorganize ? "_opt" : "_naive");
    });

TEST_P(CompiledGaxpy, ComputesCorrectProduct) {
  const EndToEndCase& tc = GetParam();
  CompileOptions options;
  options.memory_budget_elements =
      std::max<std::int64_t>(4096, tc.n * tc.n);  // comfortably OOC-ish
  options.enable_access_reorganization = tc.reorganize;
  const NodeProgram plan =
      compiler::compile_source(hpf::gaxpy_source(tc.n, tc.nprocs), options);

  TempDir dir;
  Machine machine(tc.nprocs, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    auto arrays = create_plan_arrays(ctx, plan, dir.path(),
                                     DiskModel::unit_test());
    arrays.at("a")->initialize(ctx, gen_a, 4096);
    arrays.at("b")->initialize(ctx, gen_b, 4096);

    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    execute(ctx, plan, bindings);

    std::vector<double> got = arrays.at("c")->gather_global(ctx, 4096);
    if (ctx.rank() == 0) {
      const std::vector<double> want = gaxpy::serial_matmul(
          dense(tc.n, gen_a), dense(tc.n, gen_b), tc.n);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-9) << "i=" << i;
      }
    }
  });
}

TEST(CompiledGaxpyCost, PredictionMatchesMeasuredCounters) {
  // The compiler's T_fetch/T_data for the chosen plan must equal the
  // LAF counters observed during execution (evenly dividing sizes).
  const std::int64_t n = 32;
  const int p = 4;
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const NodeProgram plan =
      compiler::compile_source(hpf::gaxpy_source(n, p), options);
  ASSERT_EQ(plan.a_orientation, runtime::SlabOrientation::kRowSlabs);

  // Re-estimate with the plan's actual slab sizes.
  compiler::GaxpyCostQuery q;
  q.n = n;
  q.nprocs = p;
  q.slab_a = plan.memory.slab_a;
  q.slab_b = plan.memory.slab_b;
  q.slab_c = plan.memory.slab_c;
  const compiler::CandidateCost predicted =
      compiler::estimate_gaxpy_cost(plan.a_orientation, q);

  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays = create_plan_arrays(ctx, plan, dir.path(),
                                     DiskModel::zero());
    arrays.at("a")->initialize(ctx, gen_a, 4096);
    arrays.at("b")->initialize(ctx, gen_b, 4096);
    arrays.at("a")->laf().reset_stats();
    arrays.at("b")->laf().reset_stats();
    arrays.at("c")->laf().reset_stats();

    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    // The schema estimator prices the uncached machine; the slab pool
    // would legitimately drop the B re-reads below its prediction.
    ExecOptions exec_options;
    exec_options.use_cache = false;
    execute(ctx, plan, bindings, exec_options);

    EXPECT_DOUBLE_EQ(
        static_cast<double>(arrays.at("a")->laf().stats().read_requests),
        predicted.cost_of("a").fetch_requests);
    EXPECT_DOUBLE_EQ(
        static_cast<double>(arrays.at("a")->laf().stats().bytes_read) / 8.0,
        predicted.cost_of("a").data_elements);
    EXPECT_DOUBLE_EQ(
        static_cast<double>(arrays.at("b")->laf().stats().read_requests),
        predicted.cost_of("b").fetch_requests);
    EXPECT_DOUBLE_EQ(
        static_cast<double>(arrays.at("c")->laf().stats().write_requests),
        predicted.cost_of("c").fetch_requests);
  });
}

TEST(CompiledGaxpyCost, OptimizedPlanBeatsNaivePlanInSimulatedTime) {
  const std::int64_t n = 64;
  const int p = 4;
  double times[2];
  for (int opt = 0; opt < 2; ++opt) {
    CompileOptions options;
    options.memory_budget_elements = 2048;
    options.enable_access_reorganization = opt == 1;
    options.disk = DiskModel::unit_test();
    const NodeProgram plan =
        compiler::compile_source(hpf::gaxpy_source(n, p), options);
    TempDir dir;
    Machine machine(p, MachineCostModel::unit_test());
    sim::RunReport report = machine.run([&](SpmdContext& ctx) {
      auto arrays = create_plan_arrays(ctx, plan, dir.path(),
                                       DiskModel::unit_test());
      arrays.at("a")->initialize(ctx, gen_a, 4096);
      arrays.at("b")->initialize(ctx, gen_b, 4096);
      sim::barrier(ctx);
      ctx.reset_accounting();
      ArrayBindings bindings;
      for (auto& [name, arr] : arrays) {
        bindings[name] = arr.get();
      }
      // Figure 14's comparison is about access reorganization on the
      // uncached machine; the slab pool would rescue the naive plan's A
      // re-sweeps and flatten the gap.
      ExecOptions exec_options;
      exec_options.use_cache = false;
      execute(ctx, plan, bindings, exec_options);
    });
    times[opt] = report.max_sim_time_s();
  }
  // The paper's headline: the reorganized plan is much faster.
  EXPECT_LT(times[1] * 3, times[0]);
}

TEST(CompiledGaxpyCost, TotalTimePredictionTracksMeasuredMakespan) {
  // The end-to-end predictor (io + compute + comm) must land within a
  // factor of two of the measured simulated makespan and preserve the
  // column/row ordering.
  const std::int64_t n = 128;
  const int p = 4;
  const std::int64_t local = n * (n / p);
  double measured[2];
  double predicted[2];
  int idx = 0;
  for (runtime::SlabOrientation orient :
       {runtime::SlabOrientation::kColumnSlabs,
        runtime::SlabOrientation::kRowSlabs}) {
    compiler::GaxpyCostQuery q;
    q.n = n;
    q.nprocs = p;
    q.slab_a = q.slab_b = q.slab_c = local / 4;
    predicted[idx] = compiler::estimate_gaxpy_total(
                         orient, q, DiskModel::touchstone_delta_cfs(),
                         sim::MachineCostModel::touchstone_delta())
                         .total_s();

    TempDir dir;
    Machine machine(p, sim::MachineCostModel::touchstone_delta());
    sim::RunReport report = machine.run([&](SpmdContext& ctx) {
      const io::StorageOrder a_order =
          orient == runtime::SlabOrientation::kRowSlabs
              ? io::StorageOrder::kRowMajor
              : io::StorageOrder::kColumnMajor;
      runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                                hpf::column_block(n, n, p), a_order,
                                DiskModel::touchstone_delta_cfs());
      runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                                hpf::row_block(n, n, p),
                                io::StorageOrder::kColumnMajor,
                                DiskModel::touchstone_delta_cfs());
      runtime::OutOfCoreArray c(ctx, dir.path(), "c",
                                hpf::column_block(n, n, p), a_order,
                                DiskModel::touchstone_delta_cfs());
      a.initialize(ctx, gen_a, local);
      b.initialize(ctx, gen_b, local);
      sim::barrier(ctx);
      ctx.reset_accounting();
      gaxpy::GaxpyConfig config;
      config.slab_a_elements = local / 4;
      config.slab_b_elements = local / 4;
      config.slab_c_elements = local / 4;
      runtime::MemoryBudget budget(1 << 22);
      if (orient == runtime::SlabOrientation::kColumnSlabs) {
        gaxpy::ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);
      } else {
        gaxpy::ooc_gaxpy_row_slabs(ctx, a, b, c, budget, config);
      }
    });
    measured[idx] = report.max_sim_time_s();
    ++idx;
  }
  for (int i = 0; i < 2; ++i) {
    EXPECT_GT(predicted[i], measured[i] / 2) << "variant " << i;
    EXPECT_LT(predicted[i], measured[i] * 2) << "variant " << i;
  }
  EXPECT_GT(predicted[0], predicted[1]);
  EXPECT_GT(measured[0], measured[1]);
}

TEST(CompiledElementwise, ComputesExpectedValues) {
  const std::int64_t rows = 24;
  const std::int64_t cols = 16;
  const int p = 4;
  const std::int64_t alpha = 3;
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const NodeProgram plan = compiler::compile_source(
      hpf::elementwise_source(rows, cols, p, alpha), options);

  TempDir dir;
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    auto arrays = create_plan_arrays(ctx, plan, dir.path(),
                                     DiskModel::unit_test());
    arrays.at("x")->initialize(ctx, gen_a, 4096);
    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    execute(ctx, plan, bindings);
    std::vector<double> got = arrays.at("y")->gather_global(ctx, 4096);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < cols; ++c) {
        for (std::int64_t r = 0; r < rows; ++r) {
          // y = x*alpha + k where k is the 1-based column.
          const double want = gen_a(r, c) * static_cast<double>(alpha) +
                              static_cast<double>(c + 1);
          ASSERT_NEAR(got[static_cast<std::size_t>(c * rows + r)], want,
                      1e-12);
        }
      }
    }
  });
}

TEST(CompiledElementwise, InPlaceUpdateSupported) {
  // x = x*2 + 1: lhs appears on the rhs.
  const std::string src =
      "parameter (n=8, p=2)\n"
      "real x(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x\n"
      "forall (k=1:n)\n"
      "  x(1:n,k) = x(1:n,k)*2 + 1\n"
      "end forall\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const NodeProgram plan = compiler::compile_source(src, options);
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays = create_plan_arrays(ctx, plan, dir.path(),
                                     DiskModel::zero());
    arrays.at("x")->initialize(
        ctx, [](std::int64_t r, std::int64_t c) {
          return static_cast<double>(r + 10 * c);
        },
        4096);
    ArrayBindings bindings{{"x", arrays.at("x").get()}};
    execute(ctx, plan, bindings);
    std::vector<double> got = arrays.at("x")->gather_global(ctx, 4096);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < 8; ++c) {
        for (std::int64_t r = 0; r < 8; ++r) {
          ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(c * 8 + r)],
                           static_cast<double>(r + 10 * c) * 2 + 1);
        }
      }
    }
  });
}

class ElementwiseExprTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(
    Expressions, ElementwiseExprTest,
    ::testing::Values("x(1:n,k)*2 + 1", "x(1:n,k) - x(1:n,k)/2",
                      "(x(1:n,k) + k)*(x(1:n,k) - k)", "k*k - 3",
                      "x(1:n,k)*x(1:n,k)*x(1:n,k)", "0 - x(1:n,k)"));

TEST_P(ElementwiseExprTest, InterpreterMatchesDirectEvaluation) {
  // Compile y = <expr> and check every element against a direct C++
  // evaluation of the same expression.
  const std::string expr = GetParam();
  const std::int64_t n = 8;
  const int p = 2;
  const std::string src =
      "parameter (n=8, p=2)\n"
      "real x(n,n), y(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = " + expr + "\n"
      "end forall\n"
      "end\n";

  auto direct = [&](double x, double k) -> double {
    if (expr == "x(1:n,k)*2 + 1") return x * 2 + 1;
    if (expr == "x(1:n,k) - x(1:n,k)/2") return x - x / 2;
    if (expr == "(x(1:n,k) + k)*(x(1:n,k) - k)") return (x + k) * (x - k);
    if (expr == "k*k - 3") return k * k - 3;
    if (expr == "x(1:n,k)*x(1:n,k)*x(1:n,k)") return x * x * x;
    return 0 - x;  // "0 - x(1:n,k)"
  };

  CompileOptions options;
  options.memory_budget_elements = 4096;
  const NodeProgram plan = compiler::compile_source(src, options);
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays = create_plan_arrays(ctx, plan, dir.path(),
                                     DiskModel::zero());
    if (arrays.contains("x")) {  // pure-index expressions reference no input
      arrays.at("x")->initialize(ctx, gen_a, 4096);
    }
    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    execute(ctx, plan, bindings);
    std::vector<double> got = arrays.at("y")->gather_global(ctx, 4096);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_NEAR(got[static_cast<std::size_t>(c * n + r)],
                      direct(gen_a(r, c), static_cast<double>(c + 1)), 1e-12)
              << expr << " at (" << r << "," << c << ")";
        }
      }
    }
  });
}

TEST(CompiledSequence, ChainedStatementsFlowThroughDisk) {
  // Three dependent elementwise statements: w must reflect the chain
  // y = x*2 + 1; z = y*y; w = z - x. Fusion is disabled so each statement
  // keeps its own plan and the dependencies flow through the LAFs.
  const std::string src =
      "parameter (n=12, p=3)\n"
      "real x(n,n), y(n,n), z(n,n), w(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y, z, w\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = x(1:n,k)*2 + 1\n"
      "end forall\n"
      "forall (k=1:n)\n"
      "  z(1:n,k) = y(1:n,k)*y(1:n,k)\n"
      "end forall\n"
      "w(1:n,1:n) = z(1:n,1:n) - x(1:n,1:n)\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 4096;
  options.enable_statement_fusion = false;
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(src, options);
  ASSERT_EQ(plans.size(), 3u);

  TempDir dir;
  Machine machine(3, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays = create_sequence_arrays(
        ctx, std::span<const NodeProgram>(plans.data(), plans.size()),
        dir.path(), DiskModel::zero());
    arrays.at("x")->initialize(ctx, gen_a, 4096);
    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    execute_sequence(
        ctx, std::span<const NodeProgram>(plans.data(), plans.size()),
        bindings);
    std::vector<double> got = arrays.at("w")->gather_global(ctx, 4096);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < 12; ++c) {
        for (std::int64_t r = 0; r < 12; ++r) {
          const double x = gen_a(r, c);
          const double y = x * 2 + 1;
          ASSERT_NEAR(got[static_cast<std::size_t>(c * 12 + r)], y * y - x,
                      1e-12);
        }
      }
    }
  });
}

TEST(CompiledSequence, SingleGaxpyCompilesThroughSequencePath) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 14;
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(hpf::gaxpy_source(32, 2), options);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].kind, compiler::ProgramKind::kGaxpy);
}

TEST(CompiledSequence, DiagnosticNamesFailingStatement) {
  const std::string src =
      "parameter (n=8, p=2)\n"
      "real x(n,n), y(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = x(1:n,k)\n"
      "end forall\n"
      "y(1:n,2:5) = x(1:n,2:5)\n"  // partial section: unsupported
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 4096;
  try {
    compiler::compile_sequence_source(src, options);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCompileError);
    EXPECT_NE(std::string(e.what()).find("statement 2"), std::string::npos);
  }
}

TEST(ExecTest, BindingValidation) {
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const NodeProgram plan =
      compiler::compile_source(hpf::gaxpy_source(16, 2), options);
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());

  // Missing binding.
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 (void)ctx;
                 ArrayBindings empty;
                 execute(ctx, plan, empty);
               }),
               Error);

  // Wrong storage order (plan wants A row-major).
  EXPECT_THROW(
      machine.run([&](SpmdContext& ctx) {
        runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                                  hpf::column_block(16, 16, 2),
                                  io::StorageOrder::kColumnMajor,
                                  DiskModel::zero());
        runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                                  hpf::row_block(16, 16, 2),
                                  io::StorageOrder::kColumnMajor,
                                  DiskModel::zero());
        runtime::OutOfCoreArray c(ctx, dir.path(), "c",
                                  hpf::column_block(16, 16, 2),
                                  io::StorageOrder::kRowMajor,
                                  DiskModel::zero());
        ArrayBindings bindings{{"a", &a}, {"b", &b}, {"c", &c}};
        execute(ctx, plan, bindings);
      }),
      Error);

  // Wrong machine size.
  Machine wrong(4, MachineCostModel::zero());
  EXPECT_THROW(wrong.run([&](SpmdContext& ctx) {
                 ArrayBindings empty;
                 execute(ctx, plan, empty);
               }),
               Error);
}

}  // namespace
}  // namespace oocc::exec
