// Fault-tolerance tests: the deterministic fault-injection framework
// (plan grammar, nth/p-mode determinism, rank filtering), the bounded
// retry loops masking transient disk and message faults, the
// crash-consistent write-back journal (no torn slab across an injected
// crash at either protocol point), structured failure on the routing
// paths, and checkpoint/restart bit-identity for the compiled Jacobi
// stencil at P = 1 / 3 / 4.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "oocc/compiler/lower.hpp"
#include "oocc/exec/checkpoint.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/io/file_backend.hpp"
#include "oocc/io/gaf.hpp"
#include "oocc/io/laf.hpp"
#include "oocc/runtime/icla.hpp"
#include "oocc/runtime/redistribute.hpp"
#include "oocc/runtime/twophase.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/faults.hpp"

namespace oocc {
namespace {

using faults::FaultInjector;
using faults::FaultPlan;
using faults::Kind;
using faults::ScopedFaultPlan;
using faults::Site;
using io::DiskModel;
using io::GlobalArrayFile;
using io::LocalArrayFile;
using io::Section;
using io::StorageOrder;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

void run1(const std::function<void(SpmdContext&)>& body) {
  Machine machine(1, MachineCostModel::zero());
  machine.run(body);
}

// ------------------------------------------------------------ plan grammar

TEST(FaultPlanTest, ParsesTheDocumentedGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "read:rank=2,nth=7;write:p=0.01,seed=42,kind=permanent;"
      "crash:at=shadow;budget:nth=1,count=3");
  ASSERT_EQ(plan.specs.size(), 4u);
  EXPECT_EQ(plan.specs[0].site, Site::kRead);
  EXPECT_EQ(plan.specs[0].rank, 2);
  EXPECT_EQ(plan.specs[0].nth, 7u);
  EXPECT_EQ(plan.specs[0].kind, Kind::kTransient);
  EXPECT_EQ(plan.specs[1].site, Site::kWrite);
  EXPECT_DOUBLE_EQ(plan.specs[1].p, 0.01);
  EXPECT_EQ(plan.specs[1].seed, 42u);
  EXPECT_EQ(plan.specs[1].kind, Kind::kPermanent);
  EXPECT_EQ(plan.specs[2].site, Site::kCrash);
  EXPECT_EQ(plan.specs[2].at, "shadow");
  EXPECT_EQ(plan.specs[2].nth, 1u);  // bare spec -> first matching op
  EXPECT_EQ(plan.specs[3].effective_count(), 3u);
  // Round trip through to_string.
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), plan.to_string());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("disk:nth=1"), Error);          // bad site
  EXPECT_THROW(FaultPlan::parse("read:p=1.5"), Error);          // p range
  EXPECT_THROW(FaultPlan::parse("read:p=0.5,nth=2"), Error);    // exclusive
  EXPECT_THROW(FaultPlan::parse("read:at=shadow"), Error);      // crash-only
  EXPECT_THROW(FaultPlan::parse("read:bogus=1"), Error);        // bad key
  EXPECT_THROW(FaultPlan::parse("read:nth=zebra"), Error);      // bad value
  EXPECT_THROW(FaultPlan::parse("crash:at=later"), Error);      // bad point
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultInjectorTest, ProbabilisticStreamIsDeterministic) {
  const auto sample = [] {
    ScopedFaultPlan plan("read:p=0.4,seed=99");
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      try {
        FaultInjector::instance().check(Site::kRead, "probe");
        pattern += '.';
      } catch (const Error&) {
        pattern += 'X';
      }
    }
    return pattern;
  };
  const std::string first = sample();
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
  // Reinstalling the same plan replays the same decisions.
  EXPECT_EQ(sample(), first);
}

TEST(FaultInjectorTest, RankFilteredSpecsMissOtherRanks) {
  ScopedFaultPlan plan("read:rank=1,nth=1,kind=permanent");
  {
    faults::ThreadRankGuard guard(2);
    EXPECT_NO_THROW(FaultInjector::instance().check(Site::kRead, "r2"));
  }
  // The host thread (rank -1) never matches a rank-filtered spec.
  EXPECT_NO_THROW(FaultInjector::instance().check(Site::kRead, "host"));
  {
    faults::ThreadRankGuard guard(1);
    EXPECT_THROW(FaultInjector::instance().check(Site::kRead, "r1"), Error);
  }
}

TEST(FaultInjectorTest, StatsCountInjections) {
  ScopedFaultPlan plan("write:nth=2,kind=permanent");
  char byte = 0;
  TempDir dir;
  io::FileBackend f(dir.file("s.bin"));
  f.write_at(0, &byte, 1);
  EXPECT_THROW(f.write_at(0, &byte, 1), Error);
  const faults::FaultStats stats = FaultInjector::instance().stats();
  EXPECT_EQ(stats.permanent_injected, 1u);
  EXPECT_GE(stats.ops_checked, 2u);
  EXPECT_EQ(stats.injected(), 1u);
}

// ------------------------------------------------------------- retry loops

TEST(RetryTest, TransientReadFaultIsMaskedAndCharged) {
  TempDir dir;
  ScopedFaultPlan plan("read:nth=1");  // transient by default
  run1([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("r.laf"), 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    laf.fill(ctx, 7.0);
    const double io_before = ctx.stats().io_time_s;
    std::vector<double> buf(16);
    laf.read_full(ctx, std::span<double>(buf.data(), buf.size()));
    EXPECT_DOUBLE_EQ(buf[0], 7.0);
    EXPECT_EQ(laf.stats().retries, 1u);
    EXPECT_EQ(ctx.stats().retries, 1u);
    // The backoff was charged to the simulated clock on top of the read.
    EXPECT_GT(ctx.stats().io_time_s - io_before,
              laf.disk().request_time(16 * 8, 1) - 1e-12);
  });
}

TEST(RetryTest, ExhaustedRetriesEscalateToPermanent) {
  TempDir dir;
  ScopedFaultPlan plan("read:p=1.0,seed=1");  // every attempt fails
  run1([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("x.laf"), 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    std::vector<double> buf(16);
    try {
      laf.read_full(ctx, std::span<double>(buf.data(), buf.size()));
      FAIL();
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kIoError);
      EXPECT_NE(std::string(e.what()).find("persisted after"),
                std::string::npos);
    }
    EXPECT_EQ(laf.stats().retries,
              static_cast<std::uint64_t>(laf.retry_policy().max_attempts - 1));
  });
}

TEST(RetryTest, TransientMessageFaultIsRetransmitted) {
  ScopedFaultPlan plan("collective:rank=0,nth=1");
  Machine machine(2, MachineCostModel());
  const sim::RunReport report = machine.run([](SpmdContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value<double>(1, 7, 42.0);
    } else {
      EXPECT_DOUBLE_EQ(ctx.recv_value<double>(0, 7), 42.0);
    }
  });
  EXPECT_EQ(report.total_retries(), 1u);
}

TEST(RetryTest, PermanentMessageFaultAbortsTheRegion) {
  ScopedFaultPlan plan("collective:rank=0,nth=1,kind=permanent");
  Machine machine(2, MachineCostModel());
  EXPECT_THROW(machine.run([](SpmdContext& ctx) {
                 if (ctx.rank() == 0) {
                   ctx.send_value<double>(1, 7, 1.0);
                 } else {
                   (void)ctx.recv_value<double>(0, 7);
                 }
               }),
               Error);
  // The machine stays usable for the next region.
  machine.run([](SpmdContext& ctx) { sim::barrier(ctx); });
}

TEST(RetryTest, BudgetFaultIsStructuredAndNotRetried) {
  runtime::MemoryBudget budget(1024);
  {
    ScopedFaultPlan plan("budget:nth=1,kind=permanent");
    try {
      budget.reserve(8, "probe");
      FAIL();
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    }
  }
  // The nth counter was consumed: the retry (restart) succeeds.
  EXPECT_NO_THROW(budget.reserve(8, "probe"));
}

// -------------------------------------------- crash-consistent write-back

TEST(JournalTest, CrashBeforeCommitLeavesOldContents) {
  TempDir dir;
  const std::filesystem::path path = dir.file("j.laf");
  run1([&](SpmdContext& ctx) {
    {
      LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                         DiskModel::unit_test());
      laf.fill(ctx, 1.0);
      laf.set_journaling(true);
      EXPECT_TRUE(laf.journaling());
      ScopedFaultPlan plan("crash:at=shadow,nth=1");
      std::vector<double> next(16, 2.0);
      try {
        laf.write_full(ctx, next);
        FAIL();
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kCrash);
      }
    }
    // Reopen: the uncommitted journal record is discarded; the array
    // still holds the pre-crash contents, not a torn mix.
    LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    std::vector<double> buf(16);
    laf.read_full(ctx, std::span<double>(buf.data(), buf.size()));
    for (double v : buf) {
      EXPECT_DOUBLE_EQ(v, 1.0);
    }
    EXPECT_EQ(laf.stats().recoveries, 0u);
  });
}

TEST(JournalTest, CrashAfterCommitReplaysOnOpen) {
  TempDir dir;
  const std::filesystem::path path = dir.file("k.laf");
  run1([&](SpmdContext& ctx) {
    {
      LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                         DiskModel::unit_test());
      laf.fill(ctx, 1.0);
      laf.set_journaling(true);
      ScopedFaultPlan plan("crash:at=apply,nth=1");
      std::vector<double> next(16, 2.0);
      EXPECT_THROW(laf.write_full(ctx, next), Error);
      EXPECT_GE(laf.stats().journal_writes, 1u);
    }
    // Reopen: the committed record is replayed — the write is complete.
    LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    std::vector<double> buf(16);
    laf.read_full(ctx, std::span<double>(buf.data(), buf.size()));
    for (double v : buf) {
      EXPECT_DOUBLE_EQ(v, 2.0);
    }
    EXPECT_EQ(laf.stats().recoveries, 1u);
  });
}

TEST(JournalTest, RowMajorPartialSectionReplaysExactBytes) {
  // The journal payload is stored in file-extent order; for a row-major
  // partial section that is a transpose of the caller's column-major
  // buffer. The replay must land the same bytes the apply would have.
  TempDir dir;
  const std::filesystem::path path = dir.file("rm.laf");
  const Section s{1, 3, 1, 4};  // 2 rows x 3 cols, strided in the file
  std::vector<double> data = {11, 21, 12, 22, 13, 23};  // col-major section
  run1([&](SpmdContext& ctx) {
    {
      LocalArrayFile laf(path, 4, 4, StorageOrder::kRowMajor,
                         DiskModel::unit_test());
      laf.fill(ctx, 0.0);
      laf.set_journaling(true);
      ScopedFaultPlan plan("crash:at=apply,nth=1");
      EXPECT_THROW(laf.write_section(ctx, s, data), Error);
    }
    LocalArrayFile laf(path, 4, 4, StorageOrder::kRowMajor,
                       DiskModel::unit_test());
    EXPECT_EQ(laf.stats().recoveries, 1u);
    std::vector<double> buf(6);
    laf.read_section(ctx, s, std::span<double>(buf.data(), buf.size()));
    EXPECT_EQ(buf, data);
    // Untouched elements stayed zero.
    std::vector<double> all(16);
    laf.read_full(ctx, std::span<double>(all.data(), all.size()));
    EXPECT_DOUBLE_EQ(all[0], 0.0);
  });
}

TEST(JournalTest, CleanJournaledWriteLeavesEmptyJournal) {
  TempDir dir;
  const std::filesystem::path path = dir.file("c.laf");
  run1([&](SpmdContext& ctx) {
    LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    laf.set_journaling(true);
    std::vector<double> data(16, 3.0);
    laf.write_full(ctx, data);
    EXPECT_EQ(laf.stats().journal_writes, 1u);
    EXPECT_EQ(laf.stats().bytes_journaled, 16u * 8u);
    std::error_code ec;
    EXPECT_EQ(std::filesystem::file_size(path.string() + ".wal", ec), 0u);
  });
}

// ------------------------------------------------- routing paths (faults)

TEST(RoutingFaultTest, TwoPhaseLoadFailsStructuredUnderReadFault) {
  const int p = 4;
  const std::int64_t n = 16;
  TempDir dir;
  GlobalArrayFile gaf(dir.file("g.bin"), n, n, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  gaf.fill_host([](std::int64_t r, std::int64_t c) {
    return static_cast<double>(r * 100 + c);
  });
  Machine machine(p, MachineCostModel::zero());
  ScopedFaultPlan plan("read:rank=2,nth=1,kind=permanent");
  try {
    machine.run([&](SpmdContext& ctx) {
      runtime::OutOfCoreArray dst(ctx, dir.path(), "dst",
                                  hpf::row_block(n, n, p),
                                  StorageOrder::kColumnMajor,
                                  DiskModel::zero());
      runtime::two_phase_load(ctx, gaf, dst, n * 4);
    });
    FAIL() << "expected the region to abort";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kIoError ||
                e.code() == ErrorCode::kRuntimeError)
        << e.what();
  }
  // No hang, and the machine is reusable afterwards.
  machine.run([](SpmdContext& ctx) { sim::barrier(ctx); });
}

TEST(RoutingFaultTest, RedistributeFailsStructuredUnderCollectiveFault) {
  const int p = 4;
  const std::int64_t n = 16;
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  // Let the staging writes through, then break a redistribution message.
  ScopedFaultPlan plan("collective:rank=1,nth=3,kind=permanent");
  try {
    machine.run([&](SpmdContext& ctx) {
      runtime::OutOfCoreArray src(ctx, dir.path(), "src",
                                  hpf::column_block(n, n, p),
                                  StorageOrder::kColumnMajor,
                                  DiskModel::zero());
      runtime::OutOfCoreArray dst(ctx, dir.path(), "dst",
                                  hpf::row_block(n, n, p),
                                  StorageOrder::kColumnMajor,
                                  DiskModel::zero());
      src.initialize(ctx,
                     [](std::int64_t r, std::int64_t c) {
                       return static_cast<double>(r + c);
                     },
                     n * n);
      runtime::redistribute(ctx, src, dst, n * 4);
    });
    FAIL() << "expected the region to abort";
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kRuntimeError) << e.what();
  }
  machine.run([](SpmdContext& ctx) { sim::barrier(ctx); });
}

// --------------------------------------------------- checkpoint / restart

double hot_edge(std::int64_t r, std::int64_t c) {
  return c == 0 ? 100.0 : (r % 4 == 0 ? 2.0 : -1.0);
}

compiler::NodeProgram compile_stencil(std::int64_t n, int p,
                                      std::int64_t budget) {
  compiler::CompileOptions options;
  options.memory_budget_elements = budget;
  return compiler::compile_source(hpf::stencil_source(n, p), options);
}

TEST(CheckpointStoreTest, SaveRestoreRoundTrip) {
  const std::int64_t n = 12;
  const int p = 3;
  TempDir dir;
  TempDir ckpt;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a", hpf::column_block(n, n, p),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, hot_edge, n * n);
    exec::CheckpointStore store(ckpt.path());
    store.save(ctx, 2, "a", a);
    // Clobber, then restore.
    a.laf().fill(ctx, 0.0);
    const auto meta = exec::CheckpointStore::latest(ckpt.path());
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->iterations, 2);
    EXPECT_EQ(meta->state, "a");
    store.restore(ctx, *meta, a);
    std::vector<double> got = a.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_EQ(got[static_cast<std::size_t>(c * n + r)], hot_edge(r, c));
        }
      }
    }
  });
}

TEST(CheckpointStoreTest, NewerSaveSupersedesAndCleansOld) {
  const std::int64_t n = 8;
  TempDir dir;
  TempDir ckpt;
  run1([&](SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a", hpf::column_block(n, n, 1),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, hot_edge, n * n);
    exec::CheckpointStore store(ckpt.path());
    store.save(ctx, 2, "a", a);
    store.save(ctx, 4, "a", a);
    const auto meta = exec::CheckpointStore::latest(ckpt.path());
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->iterations, 4);
    // The iteration-2 files were garbage-collected.
    EXPECT_FALSE(std::filesystem::exists(ckpt.path() / "a.2.r0"));
    EXPECT_TRUE(std::filesystem::exists(ckpt.path() / "a.4.r0"));
  });
}

/// Reference: the fault-free compiled run's gathered final state.
std::vector<double> reference_state(const compiler::NodeProgram& plan,
                                    std::int64_t n, int p, int iters) {
  std::vector<double> state;
  TempDir dir("oocc-faults-ref");
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays =
        exec::create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
    arrays.at("a")->initialize(ctx, hot_edge, n * n);
    sim::barrier(ctx);
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions options;
    options.max_iters = iters;
    exec::StencilRunInfo info;
    options.stencil_info = &info;
    exec::execute(ctx, plan, bindings, options);
    std::vector<double> got = arrays.at(info.result)->gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      state = std::move(got);
    }
  });
  return state;
}

class RestartBitIdentityTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Procs, RestartBitIdentityTest,
                         ::testing::Values(1, 3, 4));

TEST_P(RestartBitIdentityTest, RecoveredRunMatchesFaultFreeRun) {
  const int p = GetParam();
  const std::int64_t n = 16;
  const int iters = 6;
  const compiler::NodeProgram plan = compile_stencil(n, p, n * 8);
  const std::vector<double> want = reference_state(plan, n, p, iters);

  TempDir dir("oocc-faults-restart");
  TempDir ckpt("oocc-faults-ckpt");
  Machine machine(p, MachineCostModel::zero());
  exec::RestartRunInfo run;
  {
    // Two injected crashes on rank 0: one early (recovers from the cold
    // initializer), one later (recovers from a committed checkpoint).
    // Journaling is on automatically because a fault plan is active.
    ScopedFaultPlan fault_plan(
        "crash:at=apply,rank=0,nth=3;crash:at=apply,rank=0,nth=40");
    exec::RestartOptions options;
    options.exec = exec::default_exec_options();
    options.exec.max_iters = iters;
    options.array_dir = dir.path();
    options.disk = DiskModel::zero();
    options.checkpoint_every = 2;
    options.checkpoint_dir = ckpt.path();
    options.initialize = [&](SpmdContext& ctx,
                             const exec::ArrayBindings& bindings) {
      // Re-runs only on cold starts; deterministic, so a cold restart
      // reaches the same bits as the original first attempt.
      runtime::OutOfCoreArray* a = bindings.at("a");
      a->initialize(ctx, hot_edge, n * n);
      bindings.at("b")->laf().fill(ctx, 0.0);
    };
    run = exec::run_stencil_with_restart(machine, plan, options);
    EXPECT_GE(run.restarts, 1);
    EXPECT_GT(FaultInjector::instance().stats().crashes_injected, 0u);
  }
  EXPECT_EQ(run.stencil.iterations, iters);

  // Gather with the injector cleared: the surviving on-disk state must be
  // bit-identical to the fault-free run.
  std::vector<double> got;
  machine.run([&](SpmdContext& ctx) {
    auto arrays =
        exec::create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
    std::vector<double> state =
        arrays.at(run.stencil.result)->gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      got = std::move(state);
    }
  });
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "element " << i;
  }
}

TEST(RestartTest, CheckpointingAloneDoesNotChangeResults) {
  // Fault-free run WITH checkpointing and journaling on: still
  // bit-identical to the plain run (the machinery must be inert).
  const int p = 2;
  const std::int64_t n = 16;
  const int iters = 5;
  const compiler::NodeProgram plan = compile_stencil(n, p, n * 8);
  const std::vector<double> want = reference_state(plan, n, p, iters);

  TempDir dir("oocc-faults-inert");
  TempDir ckpt("oocc-faults-inert-ckpt");
  Machine machine(p, MachineCostModel::zero());
  exec::RestartOptions options;
  options.exec.max_iters = iters;
  options.exec.journal = true;
  options.array_dir = dir.path();
  options.disk = DiskModel::zero();
  options.checkpoint_every = 2;
  options.checkpoint_dir = ckpt.path();
  options.initialize = [&](SpmdContext& ctx,
                           const exec::ArrayBindings& bindings) {
    bindings.at("a")->initialize(ctx, hot_edge, n * n);
    bindings.at("b")->laf().fill(ctx, 0.0);
  };
  const exec::RestartRunInfo run =
      exec::run_stencil_with_restart(machine, plan, options);
  EXPECT_EQ(run.restarts, 0);
  EXPECT_EQ(run.stencil.iterations, iters);
  // A mid-run checkpoint was committed.
  const auto meta = exec::CheckpointStore::latest(ckpt.path());
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->iterations, 4);

  std::vector<double> got;
  machine.run([&](SpmdContext& ctx) {
    auto arrays =
        exec::create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
    std::vector<double> state =
        arrays.at(run.stencil.result)->gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      got = std::move(state);
    }
  });
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "element " << i;
  }
}

TEST(RestartTest, NonRestartableErrorsSurfaceImmediately) {
  EXPECT_FALSE(exec::restartable_error(ErrorCode::kCompileError));
  EXPECT_FALSE(exec::restartable_error(ErrorCode::kInvalidArgument));
  EXPECT_TRUE(exec::restartable_error(ErrorCode::kTransientIoError));
  EXPECT_TRUE(exec::restartable_error(ErrorCode::kCrash));
  EXPECT_TRUE(exec::restartable_error(ErrorCode::kIoError));
}

}  // namespace
}  // namespace oocc
