// Inter-statement slab fusion and the step-level execution engine:
// fused-vs-unfused bit-identity, LAF traffic reduction, fusion legality,
// step-walking cost pricing against measured counters, and the sequence
// error paths (conflicting placements across statements).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/gaxpy/gaxpy.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc::exec {
namespace {

using compiler::CompileOptions;
using compiler::NodeProgram;
using compiler::ProgramKind;
using compiler::StepKind;
using io::DiskModel;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

double gen_x(std::int64_t r, std::int64_t c) {
  return std::sin(static_cast<double>(r * 3 + c * 13)) + 1.25;
}

// A three-statement chain with enough cross-references that the unfused
// translation re-reads x three times and y twice while the fused sweep
// reads x exactly once.
const char* kChainSource =
    "parameter (n=24, p=4)\n"
    "real x(n,n), y(n,n), z(n,n), w(n,n)\n"
    "!hpf$ processors Pr(p)\n"
    "!hpf$ template d(n)\n"
    "!hpf$ distribute d(block) onto Pr\n"
    "!hpf$ align (*,:) with d :: x, y, z, w\n"
    "forall (k=1:n)\n"
    "  y(1:n,k) = x(1:n,k)*2 + 1\n"
    "end forall\n"
    "forall (k=1:n)\n"
    "  z(1:n,k) = y(1:n,k)*x(1:n,k)\n"
    "end forall\n"
    "forall (k=1:n)\n"
    "  w(1:n,k) = z(1:n,k) + y(1:n,k)*x(1:n,k)\n"
    "end forall\n"
    "end\n";

struct SequenceRun {
  std::map<std::string, std::vector<double>> globals;  ///< gathered arrays
  std::uint64_t laf_bytes = 0;     ///< LAF bytes moved (reads + writes)
  std::uint64_t laf_requests = 0;  ///< LAF requests (reads + writes)
  std::map<std::string, io::IoStats> per_array;  ///< rank-0 stats
  runtime::SlabCacheStats cache;   ///< pool counters summed over ranks
};

ExecOptions no_cache() {
  ExecOptions options;
  options.use_cache = false;
  return options;
}

SequenceRun run_sequence(const std::vector<NodeProgram>& plans, int nprocs,
                         const ExecOptions& exec_options = ExecOptions{}) {
  TempDir dir;
  Machine machine(nprocs, MachineCostModel::zero());
  SequenceRun out;
  machine.run([&](SpmdContext& ctx) {
    auto arrays = create_sequence_arrays(
        ctx, std::span<const NodeProgram>(plans.data(), plans.size()),
        dir.path(), DiskModel::zero());
    std::set<std::string> outputs;
    for (const NodeProgram& plan : plans) {
      for (const auto& [name, pa] : plan.arrays) {
        if (pa.is_output) {
          outputs.insert(name);
        }
      }
    }
    for (auto& [name, arr] : arrays) {
      if (!outputs.contains(name)) {
        arr->initialize(ctx, gen_x, 4096);
      }
      arr->laf().reset_stats();
    }
    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    ExecOptions options = exec_options;
    runtime::SlabCacheStats local_cache;
    options.cache_stats = &local_cache;
    execute_sequence(ctx,
                     std::span<const NodeProgram>(plans.data(), plans.size()),
                     bindings, options);
    {
      static std::mutex mu;
      std::lock_guard<std::mutex> lock(mu);
      out.cache.merge(local_cache);
    }
    for (auto& [name, arr] : arrays) {
      const io::IoStats& s = arr->laf().stats();
      {
        static std::mutex mu;
        std::lock_guard<std::mutex> lock(mu);
        out.laf_bytes += s.bytes_read + s.bytes_written;
        out.laf_requests += s.read_requests + s.write_requests;
        if (ctx.rank() == 0) {
          out.per_array[name] = s;
        }
      }
      std::vector<double> g = arr->gather_global(ctx, 4096);
      if (ctx.rank() == 0) {
        out.globals[name] = std::move(g);
      }
    }
  });
  return out;
}

TEST(SlabFusion, ChainFusesIntoOnePlan) {
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(kChainSource, options);
  ASSERT_EQ(plans.size(), 1u);
  const NodeProgram& plan = plans.front();
  EXPECT_EQ(plan.kind, ProgramKind::kElementwise);
  ASSERT_EQ(plan.statements.size(), 3u);
  EXPECT_EQ(plan.statements[0].lhs, "y");
  EXPECT_EQ(plan.statements[2].lhs, "w");
  EXPECT_EQ(plan.arrays.size(), 4u);
  EXPECT_NE(plan.cost.rationale.find("fused 3"), std::string::npos);

  // The sweep reads only x (y and z flow buffer-to-buffer) and writes all
  // three produced arrays.
  ASSERT_EQ(plan.steps.size(), 1u);
  ASSERT_EQ(plan.steps.front().kind, StepKind::kForEachSlab);
  int reads = 0;
  int writes = 0;
  for (const compiler::Step& s : plan.steps.front().body) {
    if (s.kind == StepKind::kReadSlab) {
      ++reads;
      EXPECT_EQ(s.array, "x");
    }
    if (s.kind == StepKind::kWriteSlab) {
      ++writes;
    }
  }
  EXPECT_EQ(reads, 1);
  EXPECT_EQ(writes, 3);
}

TEST(SlabFusion, FusedAndUnfusedAreBitIdentical) {
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const std::vector<NodeProgram> fused =
      compiler::compile_sequence_source(kChainSource, options);
  options.enable_statement_fusion = false;
  const std::vector<NodeProgram> unfused =
      compiler::compile_sequence_source(kChainSource, options);
  ASSERT_EQ(fused.size(), 1u);
  ASSERT_EQ(unfused.size(), 3u);

  // Uncached on both sides: this test isolates what *fusion* removes (the
  // slab pool would recover the unfused chain's re-reads on its own).
  const SequenceRun a = run_sequence(fused, 4, no_cache());
  const SequenceRun b = run_sequence(unfused, 4, no_cache());
  ASSERT_EQ(a.globals.size(), b.globals.size());
  for (const auto& [name, want] : b.globals) {
    const auto it = a.globals.find(name);
    ASSERT_NE(it, a.globals.end()) << name;
    ASSERT_EQ(it->second.size(), want.size()) << name;
    for (std::size_t i = 0; i < want.size(); ++i) {
      // Exact equality: fusion only changes where values are staged, never
      // the floating-point evaluation order.
      EXPECT_EQ(it->second[i], want[i]) << name << "[" << i << "]";
    }
  }
  // And the fusion actually removed the intermediate LAF round-trips:
  // unfused moves x three times and y twice, fused reads x once.
  EXPECT_GE(static_cast<double>(b.laf_bytes),
            2.0 * static_cast<double>(a.laf_bytes));
}

TEST(SlabFusion, InPlaceChainOnOneArray) {
  // Two statements updating the same array fuse into one sweep with a
  // single staged read and a single write per slab.
  const std::string src =
      "parameter (n=8, p=2)\n"
      "real x(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x\n"
      "forall (k=1:n)\n"
      "  x(1:n,k) = x(1:n,k)*2\n"
      "end forall\n"
      "forall (k=1:n)\n"
      "  x(1:n,k) = x(1:n,k) + k\n"
      "end forall\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(src, options);
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans.front().statements.size(), 2u);

  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays = create_plan_arrays(ctx, plans.front(), dir.path(),
                                     DiskModel::zero());
    arrays.at("x")->initialize(
        ctx,
        [](std::int64_t r, std::int64_t c) {
          return static_cast<double>(r + 10 * c);
        },
        4096);
    ArrayBindings bindings{{"x", arrays.at("x").get()}};
    execute(ctx, plans.front(), bindings);
    std::vector<double> got = arrays.at("x")->gather_global(ctx, 4096);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < 8; ++c) {
        for (std::int64_t r = 0; r < 8; ++r) {
          const double want =
              static_cast<double>(r + 10 * c) * 2 + static_cast<double>(c + 1);
          ASSERT_DOUBLE_EQ(got[static_cast<std::size_t>(c * 8 + r)], want);
        }
      }
    }
  });
}

TEST(SlabFusion, MismatchedDistributionsDoNotFuse) {
  // y/x are column-distributed, w/v row-distributed: sweeps do not align.
  const std::string src =
      "parameter (n=16, p=4)\n"
      "real x(n,n), y(n,n), v(n,n), w(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y\n"
      "!hpf$ align (:,*) with d :: v, w\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = x(1:n,k) + 1\n"
      "end forall\n"
      "forall (k=1:n)\n"
      "  w(1:n,k) = v(1:n,k) - 1\n"
      "end forall\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(src, options);
  EXPECT_EQ(plans.size(), 2u);
}

TEST(SlabFusion, TightBudgetFallsBackToUnfused) {
  // The union of three arrays does not fit one column per buffer, but each
  // individual statement's pair does — fusion must decline, not throw.
  const std::string src =
      "parameter (n=24, p=4)\n"
      "real x(n,n), y(n,n), z(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y, z\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = x(1:n,k) + 1\n"
      "end forall\n"
      "forall (k=1:n)\n"
      "  z(1:n,k) = y(1:n,k)*2\n"
      "end forall\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 64;  // 64/2 = 32 >= 24, 64/3 = 21 < 24
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(src, options);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].statements.size(), 1u);
  EXPECT_EQ(plans[1].statements.size(), 1u);
}

TEST(StepPricing, MatchesMeasuredCountersForFusedSweep) {
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(kChainSource, options);
  ASSERT_EQ(plans.size(), 1u);
  const std::map<std::string, compiler::StepIoCost> price =
      compiler::price_steps(plans.front());
  const SequenceRun run = run_sequence(plans, 4, no_cache());
  for (const auto& [name, cost] : price) {
    const io::IoStats& s = run.per_array.at(name);
    EXPECT_DOUBLE_EQ(static_cast<double>(s.read_requests),
                     cost.read_requests)
        << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_read) / 8.0,
                     cost.elements_read)
        << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.write_requests),
                     cost.write_requests)
        << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_written) / 8.0,
                     cost.elements_written)
        << name;
  }
}

TEST(StepPricing, MatchesSchemaEstimatorForGaxpy) {
  // The step walker must agree with the closed-form Figure 9/12 estimator
  // on the plan the compiler actually chose (evenly dividing sizes).
  for (const bool reorganize : {true, false}) {
    CompileOptions options;
    options.memory_budget_elements = 4096;
    options.enable_access_reorganization = reorganize;
    const NodeProgram plan =
        compiler::compile_source(hpf::gaxpy_source(32, 4), options);
    compiler::GaxpyCostQuery q;
    q.n = 32;
    q.nprocs = 4;
    q.slab_a = plan.memory.slab_a;
    q.slab_b = plan.memory.slab_b;
    q.slab_c = plan.memory.slab_c;
    const compiler::CandidateCost schema =
        compiler::estimate_gaxpy_cost(plan.a_orientation, q);
    const std::map<std::string, compiler::StepIoCost> steps =
        compiler::price_steps(plan);
    EXPECT_DOUBLE_EQ(steps.at(plan.a).read_requests,
                     schema.cost_of("a").fetch_requests);
    EXPECT_DOUBLE_EQ(steps.at(plan.a).elements_read,
                     schema.cost_of("a").data_elements);
    EXPECT_DOUBLE_EQ(steps.at(plan.b).read_requests,
                     schema.cost_of("b").fetch_requests);
    EXPECT_DOUBLE_EQ(steps.at(plan.b).elements_read,
                     schema.cost_of("b").data_elements);
    EXPECT_DOUBLE_EQ(steps.at(plan.c).write_requests,
                     schema.cost_of("c").fetch_requests);
    EXPECT_DOUBLE_EQ(steps.at(plan.c).elements_written,
                     schema.cost_of("c").data_elements);
  }
}

TEST(StepExecutor, GaxpyBitIdenticalToHandcodedKernels) {
  // The generic step executor must reproduce the hand-coded Figure 9/12
  // kernels exactly — same accumulation order, same reductions — for both
  // orientations.
  for (const bool reorganize : {true, false}) {
    CompileOptions options;
    options.memory_budget_elements = 4096;
    options.enable_access_reorganization = reorganize;
    const NodeProgram plan =
        compiler::compile_source(hpf::gaxpy_source(16, 4), options);

    std::vector<double> generic;
    std::vector<double> handcoded;
    for (const bool use_generic : {true, false}) {
      TempDir dir;
      Machine machine(4, MachineCostModel::zero());
      machine.run([&](SpmdContext& ctx) {
        auto arrays =
            create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
        arrays.at("a")->initialize(ctx, gen_x, 4096);
        arrays.at("b")->initialize(
            ctx,
            [](std::int64_t r, std::int64_t c) {
              return std::cos(static_cast<double>(r * 7 + c)) - 0.4;
            },
            4096);
        if (use_generic) {
          ArrayBindings bindings;
          for (auto& [name, arr] : arrays) {
            bindings[name] = arr.get();
          }
          execute(ctx, plan, bindings);
        } else {
          gaxpy::GaxpyConfig config;
          config.slab_a_elements = plan.memory.slab_a;
          config.slab_b_elements = plan.memory.slab_b;
          config.slab_c_elements = plan.memory.slab_c;
          config.prefetch = plan.prefetch;
          runtime::MemoryBudget budget(plan.memory_budget_elements);
          if (plan.a_orientation ==
              runtime::SlabOrientation::kColumnSlabs) {
            gaxpy::ooc_gaxpy_column_slabs(ctx, *arrays.at("a"),
                                          *arrays.at("b"), *arrays.at("c"),
                                          budget, config);
          } else {
            gaxpy::ooc_gaxpy_row_slabs(ctx, *arrays.at("a"), *arrays.at("b"),
                                       *arrays.at("c"), budget, config);
          }
        }
        std::vector<double> got = arrays.at("c")->gather_global(ctx, 4096);
        if (ctx.rank() == 0) {
          (use_generic ? generic : handcoded) = std::move(got);
        }
      });
    }
    ASSERT_EQ(generic.size(), handcoded.size());
    for (std::size_t i = 0; i < generic.size(); ++i) {
      EXPECT_EQ(generic[i], handcoded[i])
          << "reorganize=" << reorganize << " i=" << i;
    }
  }
}

TEST(SlabCache, OutputsBitIdenticalWithAndWithoutCache) {
  // The pool only changes *where* bytes come from, never their values or
  // the evaluation order: cached and uncached runs must agree exactly, for
  // both the fused sweep and the statement-at-a-time translation.
  CompileOptions options;
  options.memory_budget_elements = 4096;
  for (const bool fuse : {true, false}) {
    options.enable_statement_fusion = fuse;
    const std::vector<NodeProgram> plans =
        compiler::compile_sequence_source(kChainSource, options);
    const SequenceRun cached = run_sequence(plans, 4);
    const SequenceRun plain = run_sequence(plans, 4, no_cache());
    ASSERT_EQ(cached.globals.size(), plain.globals.size());
    for (const auto& [name, want] : plain.globals) {
      const auto it = cached.globals.find(name);
      ASSERT_NE(it, cached.globals.end()) << name;
      ASSERT_EQ(it->second.size(), want.size()) << name;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(it->second[i], want[i])
            << "fuse=" << fuse << " " << name << "[" << i << "]";
      }
    }
  }
}

TEST(SlabCache, UnfusedChainRecoversSharedTrafficFromPool) {
  // Statement-at-a-time, the chain re-reads x three times and y/z once
  // each; with the pool those demand reads hit slabs an earlier statement
  // read or staged. The budget (4096 elements vs 4*144 live data) holds
  // the whole working set, so only the first read of x misses.
  CompileOptions options;
  options.memory_budget_elements = 4096;
  options.enable_statement_fusion = false;
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(kChainSource, options);
  ASSERT_EQ(plans.size(), 3u);
  const SequenceRun cached = run_sequence(plans, 4);
  const SequenceRun plain = run_sequence(plans, 4, no_cache());
  EXPECT_GT(cached.cache.hits, 0u);
  EXPECT_GT(cached.cache.elements_hit, 0u);
  EXPECT_LT(cached.laf_bytes, plain.laf_bytes);
  // x re-reads (2 sweeps) + y (1) + z (1) are recovered: >= 1.5x fewer
  // LAF bytes than the uncached statement-at-a-time translation.
  EXPECT_GE(2 * plain.laf_bytes, 3 * cached.laf_bytes);
}

TEST(SlabCache, SequencePriceWithCacheMatchesMeasuredCounters) {
  // price_sequence with model_cache walks the same schedule the executor
  // runs and mirrors the pool's lookup/eviction policy, so priced traffic
  // and hit counts must match the measured ones exactly at this budget.
  CompileOptions options;
  options.memory_budget_elements = 4096;
  options.enable_statement_fusion = false;
  const std::vector<NodeProgram> plans =
      compiler::compile_sequence_source(kChainSource, options);
  compiler::PriceOptions popts;
  popts.model_cache = true;
  const std::vector<compiler::PlanPrice> priced = compiler::price_sequence(
      std::span<const NodeProgram>(plans.data(), plans.size()), 0, popts);
  std::map<std::string, compiler::StepIoCost> total;
  double hits = 0.0;
  for (const compiler::PlanPrice& p : priced) {
    for (const auto& [name, cost] : p.arrays) {
      compiler::StepIoCost& t = total[name];
      t.read_requests += cost.read_requests;
      t.elements_read += cost.elements_read;
      t.write_requests += cost.write_requests;
      t.elements_written += cost.elements_written;
    }
    hits += p.cache_hits;
  }
  const SequenceRun run = run_sequence(plans, 4);
  EXPECT_DOUBLE_EQ(static_cast<double>(run.cache.hits) / 4.0, hits);
  for (const auto& [name, cost] : total) {
    const io::IoStats& s = run.per_array.at(name);
    EXPECT_DOUBLE_EQ(static_cast<double>(s.read_requests),
                     cost.read_requests)
        << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_read) / 8.0,
                     cost.elements_read)
        << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.write_requests),
                     cost.write_requests)
        << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_written) / 8.0,
                     cost.elements_written)
        << name;
  }
}

TEST(SlabCache, GaxpyCachedPriceMatchesMeasuredCounters) {
  // The column-slab GAXPY re-sweeps A once per output column; with the
  // pool (and a budget that retains A) the re-sweeps hit. The cached
  // pricer must mirror that exactly — this is the reduction-side
  // counterpart of the elementwise exactness test, covering the
  // OwnedColumnWriter invalidation and the gaxpy side reservations.
  CompileOptions options;
  options.memory_budget_elements = 4096;
  options.enable_access_reorganization = false;  // force Figure 9 re-sweeps
  const NodeProgram plan =
      compiler::compile_source(hpf::gaxpy_source(16, 4), options);
  compiler::PriceOptions popts;
  popts.model_cache = true;
  const compiler::PlanPrice priced = compiler::price_plan(plan, 0, popts);
  ASSERT_GT(priced.cache_hits, 0.0);  // the re-sweeps must actually hit

  TempDir dir;
  Machine machine(4, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays =
        create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
    arrays.at("a")->initialize(ctx, gen_x, 4096);
    arrays.at("b")->initialize(ctx, gen_x, 4096);
    for (auto& [name, arr] : arrays) {
      arr->laf().reset_stats();
    }
    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    ExecOptions exec_options;
    runtime::SlabCacheStats cache;
    exec_options.cache_stats = &cache;
    execute(ctx, plan, bindings, exec_options);
    if (ctx.rank() != 0) {
      return;
    }
    EXPECT_DOUBLE_EQ(static_cast<double>(cache.hits), priced.cache_hits);
    for (const auto& [name, cost] : priced.arrays) {
      const io::IoStats& s = arrays.at(name)->laf().stats();
      EXPECT_DOUBLE_EQ(static_cast<double>(s.read_requests),
                       cost.read_requests)
          << name;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_read) / 8.0,
                       cost.elements_read)
          << name;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.write_requests),
                       cost.write_requests)
          << name;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_written) / 8.0,
                       cost.elements_written)
          << name;
    }
  });
}

TEST(SlabCache, GaxpyResultUnchangedByCache) {
  // The GAXPY executor keeps its OwnedColumnWriter bypass; the pool serves
  // the A/B slab streams. Values must match the uncached run exactly.
  CompileOptions options;
  options.memory_budget_elements = 4096;
  const NodeProgram plan =
      compiler::compile_source(hpf::gaxpy_source(16, 4), options);
  std::vector<double> results[2];
  for (const bool cache : {true, false}) {
    TempDir dir;
    Machine machine(4, MachineCostModel::zero());
    machine.run([&](SpmdContext& ctx) {
      auto arrays =
          create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
      arrays.at("a")->initialize(ctx, gen_x, 4096);
      arrays.at("b")->initialize(
          ctx,
          [](std::int64_t r, std::int64_t c) {
            return std::cos(static_cast<double>(r * 5 + c)) + 0.125;
          },
          4096);
      ArrayBindings bindings;
      for (auto& [name, arr] : arrays) {
        bindings[name] = arr.get();
      }
      ExecOptions exec_options;
      exec_options.use_cache = cache;
      execute(ctx, plan, bindings, exec_options);
      std::vector<double> got = arrays.at("c")->gather_global(ctx, 4096);
      if (ctx.rank() == 0) {
        results[cache ? 0 : 1] = std::move(got);
      }
    });
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_EQ(results[0][i], results[1][i]) << i;
  }
}

TEST(SequenceErrors, ConflictingStorageOrdersAcrossStatements) {
  // A GAXPY statement reorganizes 'a' to row-major; a following
  // elementwise statement expects it column-major. The plans lower, but
  // creating the sequence's arrays must fail with a specific diagnostic.
  CompileOptions options;
  options.memory_budget_elements = 1 << 14;
  std::vector<NodeProgram> plans;
  plans.push_back(
      compiler::compile_source(hpf::gaxpy_source(16, 2), options));
  const std::string elementwise_src =
      "parameter (n=16, p=2)\n"
      "real a(n,n), t(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: a, t\n"
      "forall (k=1:n)\n"
      "  t(1:n,k) = a(1:n,k)*2\n"
      "end forall\n"
      "end\n";
  plans.push_back(compiler::compile_source(elementwise_src, options));
  ASSERT_EQ(plans[0].array("a").storage, io::StorageOrder::kRowMajor);
  ASSERT_EQ(plans[1].array("a").storage, io::StorageOrder::kColumnMajor);

  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  try {
    machine.run([&](SpmdContext& ctx) {
      (void)create_sequence_arrays(
          ctx, std::span<const NodeProgram>(plans.data(), plans.size()),
          dir.path(), DiskModel::zero());
    });
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCompileError);
    EXPECT_NE(std::string(e.what()).find("storage"), std::string::npos);
  }
}

TEST(SequenceErrors, ConflictingDistributionsAcrossStatements) {
  // Same array name distributed differently by two plans (possible when
  // plans come from separately compiled sources).
  CompileOptions options;
  options.memory_budget_elements = 1 << 14;
  auto src_with_align = [](const char* align) {
    return std::string("parameter (n=16, p=2)\n"
                       "real x(n,n), y(n,n)\n"
                       "!hpf$ processors Pr(p)\n"
                       "!hpf$ template d(n)\n"
                       "!hpf$ distribute d(block) onto Pr\n"
                       "!hpf$ align ") +
           align +
           " with d :: x, y\n"
           "forall (k=1:n)\n"
           "  y(1:n,k) = x(1:n,k)*2\n"
           "end forall\n"
           "end\n";
  };
  std::vector<NodeProgram> plans;
  plans.push_back(compiler::compile_source(src_with_align("(*,:)"), options));
  plans.push_back(compiler::compile_source(src_with_align("(:,*)"), options));

  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  try {
    machine.run([&](SpmdContext& ctx) {
      (void)create_sequence_arrays(
          ctx, std::span<const NodeProgram>(plans.data(), plans.size()),
          dir.path(), DiskModel::zero());
    });
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCompileError);
    EXPECT_NE(std::string(e.what()).find("distributed differently"),
              std::string::npos);
  }
}

TEST(StepProgramText, RendersLoopsAndSteps) {
  CompileOptions options;
  options.memory_budget_elements = 1 << 16;
  const NodeProgram gaxpy =
      compiler::compile_source(hpf::gaxpy_source(256, 4), options);
  const std::string text = compiler::step_program_text(gaxpy);
  EXPECT_NE(text.find("for-each-slab A"), std::string::npos) << text;
  EXPECT_NE(text.find("reduce-sum -> c"), std::string::npos) << text;
  EXPECT_NE(text.find("compute-gaxpy-partial"), std::string::npos) << text;

  const std::vector<NodeProgram> fused =
      compiler::compile_sequence_source(kChainSource, options);
  const std::string etext = compiler::step_program_text(fused.front());
  EXPECT_NE(etext.find("read-slab x"), std::string::npos) << etext;
  EXPECT_NE(etext.find("write-slab w"), std::string::npos) << etext;
  EXPECT_NE(etext.find("compute-elementwise stmt#2"), std::string::npos)
      << etext;
}

}  // namespace
}  // namespace oocc::exec
