// Integration tests for the GAXPY kernels: numerical correctness against
// the serial reference across processor counts and slab ratios, and exact
// verification of the paper's I/O-cost formulas (Equations 3-6).
#include <gtest/gtest.h>

#include <cmath>

#include "oocc/gaxpy/gaxpy.hpp"
#include "oocc/runtime/redistribute.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc::gaxpy {
namespace {

using hpf::column_block;
using hpf::row_block;
using io::DiskModel;
using io::StorageOrder;
using io::TempDir;
using runtime::MemoryBudget;
using runtime::OutOfCoreArray;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

double gen_a(std::int64_t r, std::int64_t c) {
  return std::sin(static_cast<double>(r * 31 + c * 7)) + 2.0;
}

double gen_b(std::int64_t r, std::int64_t c) {
  return std::cos(static_cast<double>(r * 13 + c * 3)) - 0.5;
}

std::vector<double> dense_from(
    std::int64_t n, const std::function<double(std::int64_t, std::int64_t)>& f) {
  std::vector<double> m(static_cast<std::size_t>(n * n));
  for (std::int64_t c = 0; c < n; ++c) {
    for (std::int64_t r = 0; r < n; ++r) {
      m[static_cast<std::size_t>(c * n + r)] = f(r, c);
    }
  }
  return m;
}

enum class Kernel { kColumnSlabs, kRowSlabs, kInCore };

struct Case {
  Kernel kernel;
  int nprocs;
  std::int64_t n;
  std::int64_t slab_ratio_den;  // slab = local elements / den
  StorageOrder a_order;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string k = c.kernel == Kernel::kColumnSlabs ? "col"
                  : c.kernel == Kernel::kRowSlabs  ? "row"
                                                   : "incore";
  std::string o =
      c.a_order == StorageOrder::kColumnMajor ? "cmaj" : "rmaj";
  return k + "_p" + std::to_string(c.nprocs) + "_n" + std::to_string(c.n) +
         "_d" + std::to_string(c.slab_ratio_den) + "_" + o;
}

class GaxpyCorrectness : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, GaxpyCorrectness,
    ::testing::Values(
        Case{Kernel::kColumnSlabs, 1, 8, 1, StorageOrder::kColumnMajor},
        Case{Kernel::kColumnSlabs, 2, 8, 2, StorageOrder::kColumnMajor},
        Case{Kernel::kColumnSlabs, 4, 16, 4, StorageOrder::kColumnMajor},
        Case{Kernel::kColumnSlabs, 4, 16, 8, StorageOrder::kColumnMajor},
        Case{Kernel::kColumnSlabs, 4, 20, 4, StorageOrder::kColumnMajor},
        Case{Kernel::kRowSlabs, 1, 8, 1, StorageOrder::kRowMajor},
        Case{Kernel::kRowSlabs, 2, 8, 2, StorageOrder::kRowMajor},
        Case{Kernel::kRowSlabs, 4, 16, 4, StorageOrder::kRowMajor},
        Case{Kernel::kRowSlabs, 4, 16, 8, StorageOrder::kRowMajor},
        Case{Kernel::kRowSlabs, 4, 16, 4, StorageOrder::kColumnMajor},
        Case{Kernel::kRowSlabs, 4, 20, 4, StorageOrder::kRowMajor},
        Case{Kernel::kInCore, 1, 8, 1, StorageOrder::kColumnMajor},
        Case{Kernel::kInCore, 4, 16, 1, StorageOrder::kColumnMajor}),
    case_name);

TEST_P(GaxpyCorrectness, MatchesSerialReference) {
  const Case& tc = GetParam();
  TempDir dir;
  Machine machine(tc.nprocs, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    const std::int64_t n = tc.n;
    OutOfCoreArray a(ctx, dir.path(), "a", column_block(n, n, tc.nprocs),
                     tc.a_order, DiskModel::unit_test());
    OutOfCoreArray b(ctx, dir.path(), "b", row_block(n, n, tc.nprocs),
                     StorageOrder::kColumnMajor, DiskModel::unit_test());
    OutOfCoreArray c(ctx, dir.path(), "c", column_block(n, n, tc.nprocs),
                     StorageOrder::kColumnMajor, DiskModel::unit_test());
    a.initialize(ctx, gen_a, n * n);
    b.initialize(ctx, gen_b, n * n);

    const std::int64_t local = a.local_elements();
    const std::int64_t slab = std::max<std::int64_t>(
        1, local / tc.slab_ratio_den);
    GaxpyConfig config;
    config.slab_a_elements = slab;
    config.slab_b_elements = slab;
    config.slab_c_elements = slab;

    MemoryBudget budget(8 * local + 4 * n);
    switch (tc.kernel) {
      case Kernel::kColumnSlabs:
        ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);
        break;
      case Kernel::kRowSlabs:
        ooc_gaxpy_row_slabs(ctx, a, b, c, budget, config);
        break;
      case Kernel::kInCore:
        in_core_gaxpy(ctx, a, b, c);
        break;
    }

    std::vector<double> got = c.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      const std::vector<double> want =
          serial_matmul(dense_from(n, gen_a), dense_from(n, gen_b), n);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-9) << "element " << i;
      }
    }
  });
}

// ---------------------------------------------------------------------
// Equations 3-6: exact request/byte counts per processor.

TEST(GaxpyCostTest, ColumnSlabVersionMatchesEquations3And4) {
  // N = 16, P = 4, M = 2 columns of A = 32 elements.
  const std::int64_t n = 16;
  const int p = 4;
  const std::int64_t m = 2 * n;  // slab elements
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray a(ctx, dir.path(), "a", column_block(n, n, p),
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray b(ctx, dir.path(), "b", row_block(n, n, p),
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray c(ctx, dir.path(), "c", column_block(n, n, p),
                     StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, gen_a, n * n);
    b.initialize(ctx, gen_b, n * n);
    a.laf().reset_stats();
    b.laf().reset_stats();

    GaxpyConfig config;
    config.slab_a_elements = m;
    config.slab_b_elements = m;
    config.slab_c_elements = m;
    MemoryBudget budget(1 << 20);
    ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);

    // Equation 3: T_fetch(A) = N^3 / (M * P) requests per processor.
    const auto expected_fetch = static_cast<std::uint64_t>(
        (n * n * n) / (m * p));
    EXPECT_EQ(a.laf().stats().read_requests, expected_fetch);
    // Equation 4: T_data(A) = N^3 / P elements per processor.
    EXPECT_EQ(a.laf().stats().bytes_read,
              static_cast<std::uint64_t>(n * n * n / p) * sizeof(double));
    // B is read exactly once: N^2/P elements in N^2/(M*P) requests.
    EXPECT_EQ(b.laf().stats().read_requests,
              static_cast<std::uint64_t>((n * n) / (m * p)));
    EXPECT_EQ(b.laf().stats().bytes_read,
              static_cast<std::uint64_t>(n * n / p) * sizeof(double));
    // C is written exactly once.
    EXPECT_EQ(c.laf().stats().bytes_written,
              static_cast<std::uint64_t>(n * n / p) * sizeof(double));
  });
}

TEST(GaxpyCostTest, RowSlabVersionMatchesEquations5And6) {
  const std::int64_t n = 16;
  const int p = 4;
  const std::int64_t m = 2 * n;  // same slab size as the column test
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    // Row-slab A is paired with row-major storage by the compiler; then
    // each slab is one contiguous request.
    OutOfCoreArray a(ctx, dir.path(), "a", column_block(n, n, p),
                     StorageOrder::kRowMajor, DiskModel::zero());
    OutOfCoreArray b(ctx, dir.path(), "b", row_block(n, n, p),
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray c(ctx, dir.path(), "c", column_block(n, n, p),
                     StorageOrder::kRowMajor, DiskModel::zero());
    a.initialize(ctx, gen_a, n * n);
    b.initialize(ctx, gen_b, n * n);
    a.laf().reset_stats();
    b.laf().reset_stats();

    GaxpyConfig config;
    config.slab_a_elements = m;
    config.slab_b_elements = m;
    config.slab_c_elements = m;
    MemoryBudget budget(1 << 20);
    ooc_gaxpy_row_slabs(ctx, a, b, c, budget, config);

    // Equation 5: T_fetch(A) = N^2 / (M * P) requests per processor.
    EXPECT_EQ(a.laf().stats().read_requests,
              static_cast<std::uint64_t>((n * n) / (m * p)));
    // Equation 6: T_data(A) = N^2 / P elements per processor.
    EXPECT_EQ(a.laf().stats().bytes_read,
              static_cast<std::uint64_t>(n * n / p) * sizeof(double));
    // B is re-read once per A slab (Figure 12's loop nest).
    const std::uint64_t a_slabs =
        static_cast<std::uint64_t>((n * n) / (m * p));
    EXPECT_EQ(b.laf().stats().bytes_read,
              a_slabs * static_cast<std::uint64_t>(n * n / p) *
                  sizeof(double));
  });
}

TEST(GaxpyCostTest, RowSlabOrderOfMagnitudeCheaperThanColumnSlab) {
  // The paper's headline: same slab size, same machine — the reorganized
  // access pattern does ~N/(slabs...) less A I/O. Verify the ratio is
  // exactly N (requests and bytes) for square blocks.
  const std::int64_t n = 32;
  const int p = 4;
  const std::int64_t m = 2 * n;
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray a1(ctx, dir.path(), "a1", column_block(n, n, p),
                      StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray a2(ctx, dir.path(), "a2", column_block(n, n, p),
                      StorageOrder::kRowMajor, DiskModel::zero());
    OutOfCoreArray b(ctx, dir.path(), "b", row_block(n, n, p),
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray c(ctx, dir.path(), "c", column_block(n, n, p),
                     StorageOrder::kColumnMajor, DiskModel::zero());
    a1.initialize(ctx, gen_a, n * n);
    a2.initialize(ctx, gen_a, n * n);
    b.initialize(ctx, gen_b, n * n);
    a1.laf().reset_stats();
    a2.laf().reset_stats();

    GaxpyConfig config;
    config.slab_a_elements = m;
    config.slab_b_elements = m;
    config.slab_c_elements = m;
    MemoryBudget budget(1 << 22);
    ooc_gaxpy_column_slabs(ctx, a1, b, c, budget, config);
    ooc_gaxpy_row_slabs(ctx, a2, b, c, budget, config);

    EXPECT_EQ(a1.laf().stats().read_requests,
              a2.laf().stats().read_requests * static_cast<std::uint64_t>(n));
    EXPECT_EQ(a1.laf().stats().bytes_read,
              a2.laf().stats().bytes_read * static_cast<std::uint64_t>(n));
  });
}

TEST(GaxpyTest, LayoutValidationRejectsWrongDistributions) {
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 OutOfCoreArray a(ctx, dir.path(), "a", row_block(8, 8, 2),
                                  StorageOrder::kColumnMajor,
                                  DiskModel::zero());
                 OutOfCoreArray b(ctx, dir.path(), "b", row_block(8, 8, 2),
                                  StorageOrder::kColumnMajor,
                                  DiskModel::zero());
                 OutOfCoreArray c(ctx, dir.path(), "c",
                                  column_block(8, 8, 2),
                                  StorageOrder::kColumnMajor,
                                  DiskModel::zero());
                 MemoryBudget budget(1 << 20);
                 GaxpyConfig config;
                 config.slab_a_elements = 8;
                 config.slab_b_elements = 8;
                 config.slab_c_elements = 8;
                 ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);
               }),
               Error);
}

TEST(GaxpyTest, PrefetchProducesSameResultFasterOrEqual) {
  const std::int64_t n = 16;
  const int p = 2;
  TempDir dir;
  double times[2];
  std::vector<double> results[2];
  for (int pf = 0; pf < 2; ++pf) {
    Machine machine(p, MachineCostModel::unit_test());
    sim::RunReport report = machine.run([&](SpmdContext& ctx) {
      OutOfCoreArray a(ctx, dir.path(), "a" + std::to_string(pf),
                       column_block(n, n, p), StorageOrder::kRowMajor,
                       DiskModel::unit_test());
      OutOfCoreArray b(ctx, dir.path(), "b" + std::to_string(pf),
                       row_block(n, n, p), StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
      OutOfCoreArray c(ctx, dir.path(), "c" + std::to_string(pf),
                       column_block(n, n, p), StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
      a.initialize(ctx, gen_a, n * n);
      b.initialize(ctx, gen_b, n * n);
      sim::barrier(ctx);
      ctx.reset_accounting();
      GaxpyConfig config;
      config.slab_a_elements = n * n / p / 4;
      config.slab_b_elements = n * n / p / 4;
      config.slab_c_elements = n * n / p / 4;
      config.prefetch = pf == 1;
      MemoryBudget budget(1 << 20);
      ooc_gaxpy_row_slabs(ctx, a, b, c, budget, config);
      std::vector<double> got = c.gather_global(ctx, n * n);
      if (ctx.rank() == 0) {
        results[pf] = std::move(got);
      }
    });
    times[pf] = report.max_sim_time_s();
  }
  EXPECT_LE(times[1], times[0]);
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_DOUBLE_EQ(results[0][i], results[1][i]);
  }
}

TEST(GaxpyTest, CyclicDistributionsComputeCorrectProduct) {
  // The kernels' local-index correspondence holds for CYCLIC too: local
  // column k of A and local row k of B both map to global index k*P + r.
  const std::int64_t n = 16;
  const int p = 4;
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    const hpf::ArrayDistribution col_cyc(n, n, hpf::DistAxis::kCols,
                                         hpf::DistKind::kCyclic, p);
    const hpf::ArrayDistribution row_cyc(n, n, hpf::DistAxis::kRows,
                                         hpf::DistKind::kCyclic, p);
    OutOfCoreArray a(ctx, dir.path(), "a", col_cyc,
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray b(ctx, dir.path(), "b", row_cyc,
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray c(ctx, dir.path(), "c", col_cyc,
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray c2(ctx, dir.path(), "c2", col_cyc,
                      StorageOrder::kRowMajor, DiskModel::zero());
    OutOfCoreArray a2(ctx, dir.path(), "a2", col_cyc,
                      StorageOrder::kRowMajor, DiskModel::zero());
    a.initialize(ctx, gen_a, n * n);
    a2.initialize(ctx, gen_a, n * n);
    b.initialize(ctx, gen_b, n * n);

    GaxpyConfig config;
    config.slab_a_elements = 2 * n;
    config.slab_b_elements = 2 * n;
    config.slab_c_elements = 2 * n;
    MemoryBudget budget(1 << 20);
    ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);
    ooc_gaxpy_row_slabs(ctx, a2, b, c2, budget, config);

    const std::vector<double> want =
        serial_matmul(dense_from(n, gen_a), dense_from(n, gen_b), n);
    for (OutOfCoreArray* result : {&c, &c2}) {
      std::vector<double> got = result->gather_global(ctx, n * n);
      if (ctx.rank() == 0) {
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_NEAR(got[i], want[i], 1e-9)
              << result->name() << " element " << i;
        }
      }
    }
  });
}

TEST(GaxpyTest, BlockCyclicDistributionsComputeCorrectProduct) {
  // BLOCK-CYCLIC(2): global_to_local is monotonic on each owned set, so
  // the kernels' correspondence and the C writer's consecutive-column
  // invariant both hold.
  const std::int64_t n = 16;
  const int p = 2;
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    const hpf::ArrayDistribution col_bc(n, n, hpf::DistAxis::kCols,
                                        hpf::DistKind::kBlockCyclic, p, 2);
    const hpf::ArrayDistribution row_bc(n, n, hpf::DistAxis::kRows,
                                        hpf::DistKind::kBlockCyclic, p, 2);
    OutOfCoreArray a(ctx, dir.path(), "a", col_bc,
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray b(ctx, dir.path(), "b", row_bc,
                     StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray c(ctx, dir.path(), "c", col_bc,
                     StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, gen_a, n * n);
    b.initialize(ctx, gen_b, n * n);
    GaxpyConfig config;
    config.slab_a_elements = 2 * n;
    config.slab_b_elements = 2 * n;
    config.slab_c_elements = 2 * n;
    MemoryBudget budget(1 << 20);
    ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);
    std::vector<double> got = c.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      const std::vector<double> want =
          serial_matmul(dense_from(n, gen_a), dense_from(n, gen_b), n);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-9) << "element " << i;
      }
    }
  });
}

TEST(SerialMatmulTest, KnownProduct) {
  // 2x2: A = [1 3; 2 4] (column-major [1 2 3 4]), B = [5 7; 6 8].
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{5, 6, 7, 8};
  const std::vector<double> c = serial_matmul(a, b, 2);
  // C = A*B = [1*5+3*6, 1*7+3*8; 2*5+4*6, 2*7+4*8] = [23 31; 34 46].
  EXPECT_DOUBLE_EQ(c[0], 23.0);
  EXPECT_DOUBLE_EQ(c[1], 34.0);
  EXPECT_DOUBLE_EQ(c[2], 31.0);
  EXPECT_DOUBLE_EQ(c[3], 46.0);
}

TEST(SerialMatmulTest, SizeValidation) {
  EXPECT_THROW(serial_matmul({1.0}, {1.0}, 2), Error);
}

}  // namespace
}  // namespace oocc::gaxpy
