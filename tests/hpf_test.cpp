// Tests for the HPF front end: lexer, parser, AST utilities, alignment
// resolution, and semantic analysis of the Figure 3 program.
#include <gtest/gtest.h>

#include "oocc/hpf/align.hpp"
#include "oocc/hpf/lexer.hpp"
#include "oocc/hpf/parser.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/hpf/sema.hpp"
#include "oocc/util/error.hpp"

namespace oocc::hpf {
namespace {

// ------------------------------------------------------------------ lexer

TEST(LexerTest, TokenizesIdentifiersAndIntegers) {
  const auto toks = lex("do j=1, 64\n");
  ASSERT_GE(toks.size(), 7u);
  EXPECT_TRUE(toks[0].is_keyword("do"));
  EXPECT_EQ(toks[1].text, "j");
  EXPECT_EQ(toks[2].kind, TokenKind::kAssign);
  EXPECT_EQ(toks[3].int_value, 1);
  EXPECT_EQ(toks[4].kind, TokenKind::kComma);
  EXPECT_EQ(toks[5].int_value, 64);
  EXPECT_EQ(toks[6].kind, TokenKind::kEol);
}

TEST(LexerTest, CaseInsensitiveIdentifiers) {
  const auto toks = lex("FORALL Temp SUM\n");
  EXPECT_EQ(toks[0].text, "forall");
  EXPECT_EQ(toks[1].text, "temp");
  EXPECT_EQ(toks[2].text, "sum");
}

TEST(LexerTest, DirectiveSentinelRecognized) {
  const auto toks = lex("!hpf$ processors Pr(4)\n!HPF$ template d(8)\n");
  EXPECT_EQ(toks[0].kind, TokenKind::kDirective);
  int directives = 0;
  for (const auto& t : toks) {
    directives += t.kind == TokenKind::kDirective ? 1 : 0;
  }
  EXPECT_EQ(directives, 2);
}

TEST(LexerTest, PlainCommentsSkipped) {
  const auto toks = lex("! just words\nC classic comment line\n  x(1) = 2\n");
  // Only the assignment line produces tokens (plus EOF).
  EXPECT_TRUE(toks[0].is_keyword("x"));
}

TEST(LexerTest, TrailingCommentStripped) {
  const auto toks = lex("x(1) = 2 ! set x\n");
  bool found_comment_word = false;
  for (const auto& t : toks) {
    if (t.text == "set") found_comment_word = true;
  }
  EXPECT_FALSE(found_comment_word);
}

TEST(LexerTest, DoubleColonToken) {
  const auto toks = lex(":: a, b\n");
  EXPECT_EQ(toks[0].kind, TokenKind::kDoubleColon);
}

TEST(LexerTest, IllegalCharacterThrows) {
  try {
    lex("x = @\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(LexerTest, LineNumbersTracked) {
  const auto toks = lex("a(1) = 2\n\nb(1) = 3\n");
  EXPECT_EQ(toks[0].line, 1);
  Token b_tok;
  for (const auto& t : toks) {
    if (t.text == "b") b_tok = t;
  }
  EXPECT_EQ(b_tok.line, 3);
}

// ----------------------------------------------------------------- parser

TEST(ParserTest, ParsesFigure3Program) {
  const Program p = parse(gaxpy_source(64, 4));
  EXPECT_EQ(p.parameters.at("n"), 64);
  EXPECT_EQ(p.parameters.at("nprocs"), 4);
  ASSERT_EQ(p.arrays.size(), 4u);
  EXPECT_EQ(p.arrays[0].name, "a");
  ASSERT_TRUE(p.processors.has_value());
  EXPECT_EQ(p.processors->name, "pr");
  ASSERT_EQ(p.templates.size(), 1u);
  ASSERT_EQ(p.distributes.size(), 1u);
  EXPECT_EQ(p.distributes[0].kind, DistSpecKind::kBlock);
  ASSERT_EQ(p.aligns.size(), 2u);
  EXPECT_EQ(p.aligns[0].arrays.size(), 3u);
  EXPECT_EQ(p.aligns[0].dims[0], AlignDim::kStar);
  EXPECT_EQ(p.aligns[0].dims[1], AlignDim::kColon);
  EXPECT_EQ(p.aligns[1].dims[0], AlignDim::kColon);
  ASSERT_EQ(p.stmts.size(), 1u);
  const Stmt& outer = *p.stmts[0];
  EXPECT_EQ(outer.kind, StmtKind::kDo);
  EXPECT_EQ(outer.loop_var, "j");
  ASSERT_EQ(outer.body.size(), 2u);
  EXPECT_EQ(outer.body[0]->kind, StmtKind::kForall);
  EXPECT_EQ(outer.body[1]->kind, StmtKind::kAssign);
  EXPECT_EQ(outer.body[1]->rhs->kind, ExprKind::kSumIntrinsic);
  EXPECT_EQ(outer.body[1]->rhs->int_value, 2);
}

TEST(ParserTest, SingleStatementForall) {
  const Program p = parse(
      "real x(8,8)\n"
      "forall (k=1:8) x(1:8,k) = 1\n"
      "end\n");
  ASSERT_EQ(p.stmts.size(), 1u);
  EXPECT_EQ(p.stmts[0]->kind, StmtKind::kForall);
  ASSERT_EQ(p.stmts[0]->body.size(), 1u);
}

TEST(ParserTest, ExpressionPrecedence) {
  const Program p = parse(
      "real x(4,4)\n"
      "forall (k=1:4) x(1:4,k) = 1 + 2*3 - 4/2\n"
      "end\n");
  const Expr& rhs = *p.stmts[0]->body[0]->rhs;
  // ((1 + (2*3)) - (4/2)) evaluates to 5.
  EXPECT_EQ(evaluate_scalar(rhs, {}), 5);
}

TEST(ParserTest, UnaryMinus) {
  const Program p = parse(
      "real x(4,4)\n"
      "forall (k=1:4) x(1:4,k) = -3 + 5\n"
      "end\n");
  EXPECT_EQ(evaluate_scalar(*p.stmts[0]->body[0]->rhs, {}), 2);
}

TEST(ParserTest, DistributeOnAndOnto) {
  for (const char* word : {"on", "onto"}) {
    const std::string src = std::string("real a(8)\n!hpf$ processors P(2)\n") +
                            "!hpf$ template d(8)\n!hpf$ distribute d(block) " +
                            word + " P\nend\n";
    const Program p = parse(src);
    ASSERT_EQ(p.distributes.size(), 1u);
    EXPECT_EQ(p.distributes[0].processors_name, "p");
  }
}

TEST(ParserTest, CyclicAndBlockCyclicSpecs) {
  const Program p = parse(
      "real a(8), b(8)\n"
      "!hpf$ processors P(2)\n"
      "!hpf$ template t1(8)\n"
      "!hpf$ template t2(8)\n"
      "!hpf$ distribute t1(cyclic) onto P\n"
      "!hpf$ distribute t2(cyclic(3)) onto P\n"
      "end\n");
  EXPECT_EQ(p.distributes[0].kind, DistSpecKind::kCyclic);
  EXPECT_EQ(p.distributes[1].kind, DistSpecKind::kBlockCyclic);
  EXPECT_EQ(evaluate_scalar(*p.distributes[1].block, {}), 3);
}

TEST(ParserTest, MalformedInputsProduceDiagnostics) {
  // Each case names the failure's line in the message.
  const char* cases[] = {
      "do j=1 64\nend do\nend\n",          // missing comma
      "real a(2,2)\na(1,1) =\nend\n",      // missing rhs
      "forall (k=1:4)\n",                  // unterminated forall
      "real a(2,2,2)\nend\n",              // rank 3
      "!hpf$ frobnicate x\nend\n",         // unknown directive
      "parameter (n=1, n=2)\nend\n",       // duplicate parameter
      "real a(2,2)\n1 = a(1,1)\nend\n",    // assignment to non-array
  };
  for (const char* src : cases) {
    EXPECT_THROW(parse(src), Error) << src;
    try {
      parse(src);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kParseError) << src;
    }
  }
}

TEST(ParserTest, RoundTripThroughToString) {
  const Program p = parse(gaxpy_source(32, 2));
  const std::string printed = to_string(p);
  // The printed program must re-parse to an equivalent AST.
  const Program p2 = parse(printed);
  EXPECT_EQ(to_string(p2), printed);
  EXPECT_EQ(p2.parameters.at("n"), 32);
  ASSERT_EQ(p2.stmts.size(), 1u);
}

// -------------------------------------------------------------------- ast

TEST(AstTest, EvaluateScalarErrors) {
  const Program p = parse(
      "real a(4,4)\n"
      "forall (k=1:4) a(1:4,k) = a(1:4,k) * 2\n"
      "end\n");
  // Array reference is not a scalar.
  EXPECT_THROW(evaluate_scalar(*p.stmts[0]->body[0]->rhs, {}), Error);
  // Division by zero.
  auto div = make_binary(BinOp::kDiv, make_int(4), make_int(0));
  EXPECT_THROW(evaluate_scalar(*div, {}), Error);
  // Unbound variable.
  auto var = make_var("ghost");
  EXPECT_THROW(evaluate_scalar(*var, {}), Error);
}

TEST(AstTest, CloneIsDeep) {
  const Program p = parse(
      "real a(4,4), b(4,4)\n"
      "forall (k=1:4) a(1:4,k) = b(1:4,k) * 3 + 1\n"
      "end\n");
  const Expr& rhs = *p.stmts[0]->body[0]->rhs;
  ExprPtr copy = clone_expr(rhs);
  EXPECT_EQ(to_string(*copy), to_string(rhs));
  EXPECT_NE(copy.get(), &rhs);
  EXPECT_NE(copy->lhs.get(), rhs.lhs.get());
}

// ------------------------------------------------------------------ align

TEST(AlignTest, ColumnAlignment) {
  TemplateInfo tmpl{"d", 64, DistKind::kBlock, 0, 4};
  const ArrayDistribution d = resolve_alignment(
      {AlignDim::kStar, AlignDim::kColon}, tmpl, 64, 64, "a");
  EXPECT_EQ(d.axis(), DistAxis::kCols);
  EXPECT_EQ(d.local_cols(0), 16);
  EXPECT_EQ(d.local_rows(0), 64);
}

TEST(AlignTest, RowAlignment) {
  TemplateInfo tmpl{"d", 64, DistKind::kBlock, 0, 4};
  const ArrayDistribution d = resolve_alignment(
      {AlignDim::kColon, AlignDim::kStar}, tmpl, 64, 64, "b");
  EXPECT_EQ(d.axis(), DistAxis::kRows);
  EXPECT_EQ(d.local_rows(0), 16);
}

TEST(AlignTest, Rank1Alignment) {
  TemplateInfo tmpl{"d", 32, DistKind::kCyclic, 0, 4};
  const ArrayDistribution d =
      resolve_alignment({AlignDim::kColon}, tmpl, 32, 1, "v");
  EXPECT_EQ(d.axis(), DistAxis::kRows);
  EXPECT_EQ(d.row_dist().kind(), DistKind::kCyclic);
}

TEST(AlignTest, Violations) {
  TemplateInfo tmpl{"d", 64, DistKind::kBlock, 0, 4};
  // No aligned dimension.
  EXPECT_THROW(resolve_alignment({AlignDim::kStar, AlignDim::kStar}, tmpl, 64,
                                 64, "a"),
               Error);
  // Two aligned dimensions onto a 1-D template.
  EXPECT_THROW(resolve_alignment({AlignDim::kColon, AlignDim::kColon}, tmpl,
                                 64, 64, "a"),
               Error);
  // Extent mismatch.
  EXPECT_THROW(resolve_alignment({AlignDim::kStar, AlignDim::kColon}, tmpl,
                                 64, 32, "a"),
               Error);
}

// ------------------------------------------------------------------- sema

TEST(SemaTest, BindsFigure3Distributions) {
  const BoundProgram bound = analyze(parse(gaxpy_source(64, 4)));
  EXPECT_EQ(bound.nprocs, 4);
  const ArrayInfo& a = bound.array("a");
  EXPECT_EQ(a.dist.axis(), DistAxis::kCols);
  EXPECT_EQ(a.dist.local_cols(0), 16);
  const ArrayInfo& b = bound.array("b");
  EXPECT_EQ(b.dist.axis(), DistAxis::kRows);
  EXPECT_EQ(b.dist.local_rows(0), 16);
  const ArrayInfo& c = bound.array("c");
  EXPECT_TRUE(c.dist == a.dist);
  EXPECT_EQ(bound.stmts.size(), 1u);
}

TEST(SemaTest, UndistributedArrayIsReplicated) {
  const BoundProgram bound = analyze(parse(
      "real z(8,8)\n"
      "!hpf$ processors P(2)\n"
      "forall (k=1:8) z(1:8,k) = 1\n"
      "end\n"));
  EXPECT_EQ(bound.array("z").dist.axis(), DistAxis::kNone);
  EXPECT_EQ(bound.array("z").dist.local_elements(0), 64);
}

TEST(SemaTest, SemanticErrors) {
  struct BadCase {
    const char* src;
    const char* what;
  };
  const BadCase cases[] = {
      {"real a(4,4)\nforall (k=1:4) a(1:4,k) = ghost(1:4,k)\nend\n",
       "undeclared array"},
      {"real a(4,4)\nforall (k=1:4) a(1:4) = 1\nend\n", "rank mismatch"},
      {"real a(4,4)\n!hpf$ align (*,:) with nope :: a\nend\n",
       "unknown template"},
      {"!hpf$ template d(8)\n!hpf$ distribute q(block)\nend\n",
       "unknown distribute target"},
      {"real a(4,4)\nforall (k=1:4) a(1:4,k) = j\nend\n",
       "unbound scalar"},
      {"real a(4,4)\ndo k=1,4\ndo k=1,4\nend do\nend do\nend\n",
       "shadowed loop var"},
      {"parameter (n=0)\nreal a(n,n)\nend\n", "non-positive extent"},
  };
  for (const auto& c : cases) {
    try {
      analyze(parse(c.src));
      FAIL() << c.what;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kSemanticError) << c.what << "\n"
                                                     << e.what();
    }
  }
}

TEST(SemaTest, TemplateWithoutDistributeStaysUndistributed) {
  const BoundProgram bound = analyze(parse(
      "real a(8,8)\n"
      "!hpf$ processors P(4)\n"
      "!hpf$ template d(8)\n"
      "!hpf$ align (*,:) with d :: a\n"
      "end\n"));
  // Template never distributed -> one-processor (collapsed-like) layout:
  // the align still applies but over 1 "processor".
  EXPECT_EQ(bound.array("a").dist.nprocs(), 1);
}

}  // namespace
}  // namespace oocc::hpf
