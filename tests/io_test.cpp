// Tests for the I/O substrate: disk cost model, file backend, temp dirs.
#include <gtest/gtest.h>

#include <filesystem>

#include "oocc/io/disk_model.hpp"
#include "oocc/io/file_backend.hpp"
#include "oocc/io/io_stats.hpp"
#include "oocc/util/error.hpp"
#include "oocc/util/faults.hpp"

namespace oocc::io {
namespace {

TEST(DiskModelTest, RequestTimeIsOverheadPlusTransfer) {
  DiskModel d = DiskModel::unit_test();
  EXPECT_DOUBLE_EQ(d.request_time(0.0, 1), d.request_overhead_s);
  EXPECT_DOUBLE_EQ(d.request_time(1e6, 1),
                   d.request_overhead_s + 1.0);  // 1 MB at 1 MB/s
}

TEST(DiskModelTest, ContentionCapsBandwidth) {
  DiskModel d;
  d.request_overhead_s = 0.0;
  d.per_proc_bandwidth_Bps = 2e6;
  d.aggregate_bandwidth_Bps = 8e6;
  // Up to 4 processors, each gets its full 2 MB/s; beyond that the shared
  // subsystem is the bottleneck.
  EXPECT_DOUBLE_EQ(d.effective_bandwidth(1), 2e6);
  EXPECT_DOUBLE_EQ(d.effective_bandwidth(4), 2e6);
  EXPECT_DOUBLE_EQ(d.effective_bandwidth(8), 1e6);
  EXPECT_DOUBLE_EQ(d.effective_bandwidth(64), 8e6 / 64);
  // Total time for a fixed aggregate volume is constant once saturated:
  // P procs * (bytes/P) / (agg/P) = bytes * P / agg ... i.e. per-proc time
  // for its 1/P share stays constant.
  const double share16 = (64e6 / 16) / d.effective_bandwidth(16);
  const double share64 = (64e6 / 64) / d.effective_bandwidth(64);
  EXPECT_DOUBLE_EQ(share16, share64);
}

TEST(DiskModelTest, DeltaPresetSane) {
  DiskModel d = DiskModel::touchstone_delta_cfs();
  EXPECT_GT(d.request_overhead_s, 0.0);
  EXPECT_LE(d.effective_bandwidth(64), d.per_proc_bandwidth_Bps);
}

TEST(IoStatsTest, MergeAndSummary) {
  IoStats a;
  a.read_requests = 2;
  a.bytes_read = 100;
  IoStats b;
  b.write_requests = 3;
  b.bytes_written = 50;
  b.time_s = 1.5;
  a.merge(b);
  EXPECT_EQ(a.total_requests(), 5u);
  EXPECT_EQ(a.total_bytes(), 150u);
  EXPECT_NE(a.summary().find("reads=2"), std::string::npos);
}

TEST(TempDirTest, CreatesAndRemoves) {
  std::filesystem::path where;
  {
    TempDir dir("oocc-test");
    where = dir.path();
    EXPECT_TRUE(std::filesystem::is_directory(where));
    EXPECT_NE(where.string().find("oocc-test"), std::string::npos);
    // Populate so removal is recursive.
    FileBackend f(dir.file("x.bin"));
    const char data[4] = {1, 2, 3, 4};
    f.write_at(0, data, 4);
  }
  EXPECT_FALSE(std::filesystem::exists(where));
}

TEST(FileBackendTest, WriteThenReadRoundTrip) {
  TempDir dir;
  FileBackend f(dir.file("roundtrip.bin"));
  const std::vector<double> out{1.0, 2.0, 3.0, 4.0};
  f.write_at(16, out.data(), out.size() * sizeof(double));
  std::vector<double> in(4);
  f.read_at(16, in.data(), in.size() * sizeof(double));
  EXPECT_EQ(in, out);
  EXPECT_EQ(f.size(), 16u + 32u);
}

TEST(FileBackendTest, ReadPastEofThrows) {
  TempDir dir;
  FileBackend f(dir.file("short.bin"));
  f.truncate(8);
  char buf[16];
  EXPECT_THROW(f.read_at(0, buf, 16), Error);
  try {
    f.read_at(100, buf, 1);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
}

TEST(FileBackendTest, TruncateZeroFills) {
  TempDir dir;
  FileBackend f(dir.file("zeros.bin"));
  f.truncate(64);
  std::vector<double> in(8, 99.0);
  f.read_at(0, in.data(), 64);
  for (double v : in) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(FileBackendTest, MoveTransfersOwnership) {
  TempDir dir;
  FileBackend a(dir.file("move.bin"));
  const char data[2] = {7, 8};
  a.write_at(0, data, 2);
  FileBackend b(std::move(a));
  char in[2];
  b.read_at(0, in, 2);
  EXPECT_EQ(in[0], 7);
}

TEST(FileBackendTest, InjectedReadFaultFiresOnNthRead) {
  TempDir dir;
  FileBackend f(dir.file("fault.bin"));
  f.truncate(8);
  char buf[1];
  faults::ScopedFaultPlan plan("read:nth=2,kind=permanent");
  EXPECT_NO_THROW(f.read_at(0, buf, 1));
  EXPECT_THROW(f.read_at(0, buf, 1), Error);
  // A bare nth spec fires once, then stands down.
  EXPECT_NO_THROW(f.read_at(0, buf, 1));
}

TEST(FileBackendTest, InjectedWriteFaultFires) {
  TempDir dir;
  FileBackend f(dir.file("wfault.bin"));
  faults::ScopedFaultPlan plan("write:nth=1,kind=permanent");
  const char data[1] = {0};
  try {
    f.write_at(0, data, 1);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
}

}  // namespace
}  // namespace oocc::io
