// Tests for LocalArrayFile: section extents (the paper's request metric),
// data round-trips in both storage orders, simulated-cost charging, and
// failure propagation.
#include <gtest/gtest.h>

#include "oocc/io/laf.hpp"
#include "oocc/sim/machine.hpp"
#include "oocc/util/rng.hpp"

namespace oocc::io {
namespace {

/// Runs `body` on a 1-processor machine with unit-test cost models.
template <typename F>
sim::RunReport run1(F&& body) {
  sim::Machine machine(1, sim::MachineCostModel::unit_test());
  return machine.run(std::forward<F>(body));
}

TEST(SectionTest, Helpers) {
  const Section s{2, 5, 1, 4};
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s.cols(), 3);
  EXPECT_EQ(s.elements(), 9);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE((Section{2, 2, 0, 4}).empty());
}

TEST(LafTest, ColumnMajorFullColumnsAreOneExtent) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    (void)ctx;
    LocalArrayFile laf(dir.file("a.laf"), 8, 6, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    // Full-height column slab: coalesces to a single contiguous request.
    EXPECT_EQ(laf.section_request_count(Section{0, 8, 2, 5}), 1u);
    // Partial rows: one extent per column.
    EXPECT_EQ(laf.section_request_count(Section{1, 4, 2, 5}), 3u);
    // Row slab of a column-major file: one extent per column => 6.
    EXPECT_EQ(laf.section_request_count(Section{2, 4, 0, 6}), 6u);
  });
}

TEST(LafTest, RowMajorFullRowsAreOneExtent) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    (void)ctx;
    LocalArrayFile laf(dir.file("a.laf"), 8, 6, StorageOrder::kRowMajor,
                       DiskModel::unit_test());
    EXPECT_EQ(laf.section_request_count(Section{2, 5, 0, 6}), 1u);
    EXPECT_EQ(laf.section_request_count(Section{2, 5, 1, 4}), 3u);
    // Column slab of a row-major file: one extent per row => 8.
    EXPECT_EQ(laf.section_request_count(Section{0, 8, 3, 5}), 8u);
  });
}

TEST(LafTest, ExtentOffsetsAreCorrectColumnMajor) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    (void)ctx;
    LocalArrayFile laf(dir.file("a.laf"), 4, 3, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    const auto extents = laf.section_extents(Section{1, 3, 1, 3});
    ASSERT_EQ(extents.size(), 2u);
    // Column 1 rows [1,3): elements 4*1+1=5,6 -> offset 40, length 16.
    EXPECT_EQ(extents[0].offset_bytes, 5u * 8u);
    EXPECT_EQ(extents[0].length_bytes, 16u);
    EXPECT_EQ(extents[1].offset_bytes, 9u * 8u);
  });
}

class LafOrderTest : public ::testing::TestWithParam<StorageOrder> {};

INSTANTIATE_TEST_SUITE_P(Orders, LafOrderTest,
                         ::testing::Values(StorageOrder::kColumnMajor,
                                           StorageOrder::kRowMajor));

TEST_P(LafOrderTest, SectionRoundTripPreservesData) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("rt.laf"), 7, 5, GetParam(),
                       DiskModel::unit_test());
    // Write the whole array with distinct values via full-array section.
    std::vector<double> all(35);
    for (std::int64_t c = 0; c < 5; ++c) {
      for (std::int64_t r = 0; r < 7; ++r) {
        all[static_cast<std::size_t>(c * 7 + r)] =
            static_cast<double>(100 * r + c);
      }
    }
    laf.write_full(ctx, std::span<const double>(all.data(), all.size()));

    // Read back an interior section and check element mapping.
    const Section s{2, 6, 1, 4};
    std::vector<double> sec(static_cast<std::size_t>(s.elements()));
    laf.read_section(ctx, s, std::span<double>(sec.data(), sec.size()));
    for (std::int64_t c = s.col0; c < s.col1; ++c) {
      for (std::int64_t r = s.row0; r < s.row1; ++r) {
        EXPECT_DOUBLE_EQ(
            sec[static_cast<std::size_t>((c - s.col0) * s.rows() +
                                         (r - s.row0))],
            static_cast<double>(100 * r + c))
            << "r=" << r << " c=" << c;
      }
    }
  });
}

TEST_P(LafOrderTest, PartialSectionWriteIsVisibleInFullRead) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("pw.laf"), 6, 6, GetParam(),
                       DiskModel::unit_test());
    laf.fill(ctx, 0.0);
    const Section s{1, 3, 2, 5};
    std::vector<double> patch(static_cast<std::size_t>(s.elements()));
    for (std::size_t i = 0; i < patch.size(); ++i) {
      patch[i] = static_cast<double>(i + 1);
    }
    laf.write_section(ctx, s,
                      std::span<const double>(patch.data(), patch.size()));
    std::vector<double> all(36);
    laf.read_full(ctx, std::span<double>(all.data(), all.size()));
    // Spot checks: (1,2) is patch[0]; (0,0) untouched.
    EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * 6 + 1)], 1.0);
    EXPECT_DOUBLE_EQ(all[0], 0.0);
    // Count nonzeros == patch size.
    int nonzero = 0;
    for (double v : all) {
      nonzero += v != 0.0 ? 1 : 0;
    }
    EXPECT_EQ(nonzero, 6);
  });
}

TEST_P(LafOrderTest, RandomSectionFuzzAgainstShadowArray) {
  // Random interleaved section writes and reads must always agree with an
  // in-memory shadow of the array, in both storage orders.
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    const std::int64_t rows = 13;
    const std::int64_t cols = 11;
    LocalArrayFile laf(dir.file("fuzz.laf"), rows, cols, GetParam(),
                       DiskModel::zero());
    std::vector<double> shadow(static_cast<std::size_t>(rows * cols), 0.0);
    laf.fill(ctx, 0.0);

    oocc::Rng rng(GetParam() == StorageOrder::kColumnMajor ? 11 : 22);
    std::vector<double> buf;
    for (int op = 0; op < 300; ++op) {
      const std::int64_t r0 = rng.next_int(0, rows - 1);
      const std::int64_t r1 = rng.next_int(r0 + 1, rows);
      const std::int64_t c0 = rng.next_int(0, cols - 1);
      const std::int64_t c1 = rng.next_int(c0 + 1, cols);
      const Section s{r0, r1, c0, c1};
      buf.resize(static_cast<std::size_t>(s.elements()));
      if (rng.next_below(2) == 0) {
        for (double& v : buf) {
          v = rng.next_double(-10.0, 10.0);
        }
        laf.write_section(ctx, s,
                          std::span<const double>(buf.data(), buf.size()));
        for (std::int64_t c = c0; c < c1; ++c) {
          for (std::int64_t r = r0; r < r1; ++r) {
            shadow[static_cast<std::size_t>(c * rows + r)] =
                buf[static_cast<std::size_t>((c - c0) * s.rows() +
                                             (r - r0))];
          }
        }
      } else {
        laf.read_section(ctx, s, std::span<double>(buf.data(), buf.size()));
        for (std::int64_t c = c0; c < c1; ++c) {
          for (std::int64_t r = r0; r < r1; ++r) {
            ASSERT_DOUBLE_EQ(
                buf[static_cast<std::size_t>((c - c0) * s.rows() +
                                             (r - r0))],
                shadow[static_cast<std::size_t>(c * rows + r)])
                << "op=" << op << " r=" << r << " c=" << c;
          }
        }
      }
    }
  });
}

TEST_P(LafOrderTest, ExtentCountsConsistentWithExtentList) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    (void)ctx;
    LocalArrayFile laf(dir.file("ec.laf"), 9, 7, GetParam(),
                       DiskModel::zero());
    oocc::Rng rng(5);
    for (int trial = 0; trial < 100; ++trial) {
      const std::int64_t r0 = rng.next_int(0, 8);
      const std::int64_t r1 = rng.next_int(r0 + 1, 9);
      const std::int64_t c0 = rng.next_int(0, 6);
      const std::int64_t c1 = rng.next_int(c0 + 1, 7);
      const Section s{r0, r1, c0, c1};
      const auto extents = laf.section_extents(s);
      ASSERT_EQ(extents.size(), laf.section_request_count(s));
      // Total extent bytes == section bytes.
      std::uint64_t bytes = 0;
      for (const auto& e : extents) {
        bytes += e.length_bytes;
      }
      ASSERT_EQ(bytes, static_cast<std::uint64_t>(s.elements()) * 8);
    }
  });
}

TEST(LafTest, CostChargedPerExtent) {
  TempDir dir;
  const DiskModel disk = DiskModel::unit_test();
  sim::Machine machine(1, sim::MachineCostModel::zero());
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("cost.laf"), 10, 4,
                       StorageOrder::kColumnMajor, disk);
    std::vector<double> buf(20);
    // Rows [0,5) of columns [0,4): 4 extents of 40 bytes each.
    laf.read_section(ctx, Section{0, 5, 0, 4},
                     std::span<double>(buf.data(), buf.size()));
    const double expected = 4 * disk.request_time(40.0, 1);
    EXPECT_NEAR(ctx.clock().now(), expected, 1e-12);
    EXPECT_EQ(laf.stats().read_requests, 4u);
    EXPECT_EQ(laf.stats().bytes_read, 160u);
  });
  EXPECT_EQ(report.procs[0].io_requests, 4u);
  EXPECT_EQ(report.procs[0].io_bytes_read, 160u);
  EXPECT_NEAR(report.procs[0].io_time_s, 4 * disk.request_time(40.0, 1),
              1e-12);
}

TEST(LafTest, WholeArrayReadIsSingleRequest) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("one.laf"), 100, 50,
                       StorageOrder::kColumnMajor, DiskModel::unit_test());
    std::vector<double> buf(5000);
    laf.read_full(ctx, std::span<double>(buf.data(), buf.size()));
    EXPECT_EQ(laf.stats().read_requests, 1u);
  });
}

TEST(LafTest, SectionValidation) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("v.laf"), 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    std::vector<double> buf(100);
    EXPECT_THROW(laf.read_section(ctx, Section{0, 5, 0, 1},
                                  std::span<double>(buf.data(), 5)),
                 Error);
    EXPECT_THROW(laf.read_section(ctx, Section{0, 0, 0, 1},
                                  std::span<double>(buf.data(), 0)),
                 Error);
    // Buffer size mismatch.
    EXPECT_THROW(laf.read_section(ctx, Section{0, 2, 0, 2},
                                  std::span<double>(buf.data(), 3)),
                 Error);
  });
}

TEST(LafTest, BackendFaultPropagatesAsIoError) {
  TempDir dir;
  faults::ScopedFaultPlan plan("read:nth=1,kind=permanent");
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("f.laf"), 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    std::vector<double> buf(16);
    try {
      laf.read_full(ctx, std::span<double>(buf.data(), buf.size()));
      FAIL();
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kIoError);
    }
  });
}

TEST(LafTest, ResetStatsClearsCounters) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("rs.laf"), 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    laf.fill(ctx, 1.0);
    EXPECT_GT(laf.stats().write_requests, 0u);
    laf.reset_stats();
    EXPECT_EQ(laf.stats().total_requests(), 0u);
  });
}

}  // namespace
}  // namespace oocc::io
