#include "progen.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace oocc::progen {

namespace {

/// splitmix64 — tiny, seedable, and fully deterministic across platforms
/// (no <random> distribution wobble between standard libraries).
struct Rng {
  std::uint64_t state;

  explicit Rng(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform-ish in [0, bound); modulo bias is irrelevant at test bounds.
  std::uint64_t pick(std::uint64_t bound) { return next() % bound; }

  template <typename T>
  T choose(const std::vector<T>& options) {
    return options[static_cast<std::size_t>(pick(options.size()))];
  }
};

/// Sizes divisible by every generated P so block distributions are even —
/// the differential harness compares processor-0 priced counters against
/// rank-0 measured ones, and even blocks keep every rank's schedule (and
/// therefore the shared assertions) identical.
std::int64_t pick_n(Rng& rng) {
  return rng.choose<std::int64_t>({16, 24, 32, 48});
}

int pick_p(Rng& rng) { return rng.choose<int>({1, 2, 4}); }

/// One elementwise assignment text: lhs(1:n,k) = f(defined arrays, k).
std::string chain_stmt(Rng& rng, const std::string& lhs,
                       const std::vector<std::string>& defined) {
  const std::string s1 = rng.choose(defined);
  const std::string s2 = rng.choose(defined);
  const std::int64_t c = 2 + static_cast<std::int64_t>(rng.pick(4));
  std::ostringstream oss;
  switch (rng.pick(4)) {
    case 0:
      oss << lhs << "(1:n,k) = " << s1 << "(1:n,k)*" << c << " + 1";
      break;
    case 1:
      oss << lhs << "(1:n,k) = " << s1 << "(1:n,k) + " << s2 << "(1:n,k)*"
          << c;
      break;
    case 2:
      oss << lhs << "(1:n,k) = " << s1 << "(1:n,k)*" << s2
          << "(1:n,k) + k";
      break;
    default:
      oss << lhs << "(1:n,k) = " << s1 << "(1:n,k)/" << c << " + " << s2
          << "(1:n,k)";
      break;
  }
  return oss.str();
}

void emit_forall(std::ostringstream& oss, const std::string& stmt) {
  oss << "      forall (k=1:n)\n"
      << "        " << stmt << "\n"
      << "      end forall\n";
}

void emit_header(std::ostringstream& oss, std::int64_t n, int p,
                 const std::vector<std::string>& col_arrays,
                 const std::vector<std::string>& row_arrays) {
  oss << "      parameter (n=" << n << ", p=" << p << ")\n";
  oss << "      real";
  bool first = true;
  for (const std::string& a : col_arrays) {
    oss << (first ? " " : ", ") << a << "(n,n)";
    first = false;
  }
  for (const std::string& a : row_arrays) {
    oss << (first ? " " : ", ") << a << "(n,n)";
    first = false;
  }
  oss << "\n"
      << "!hpf$ processors Pr(p)\n"
      << "!hpf$ template d(n)\n"
      << "!hpf$ distribute d(block) onto Pr\n";
  oss << "!hpf$ align (*,:) with d ::";
  first = true;
  for (const std::string& a : col_arrays) {
    oss << (first ? " " : ", ") << a;
    first = false;
  }
  oss << "\n";
  if (!row_arrays.empty()) {
    oss << "!hpf$ align (:,*) with d ::";
    first = true;
    for (const std::string& a : row_arrays) {
      oss << (first ? " " : ", ") << a;
      first = false;
    }
    oss << "\n";
  }
}

void emit_gaxpy_nest(std::ostringstream& oss) {
  oss << "      do j=1, n\n"
      << "        forall (k=1:n)\n"
      << "          temp(1:n,k) = b(k,j)*a(1:n,k)\n"
      << "        end forall\n"
      << "        c(1:n,j) = SUM(temp,2)\n"
      << "      end do\n";
}

/// The oocc_compile / serve default budget rule (a quarter of the largest
/// local array plus reduction-temporary headroom), replicated here so the
/// generator has no serve dependency.
std::int64_t default_budget(std::int64_t n, int p) {
  const std::int64_t largest = n * (n / p);
  return largest / 4 + 4 * n;
}

GeneratedProgram gen_chain(Rng& rng, std::uint64_t seed) {
  GeneratedProgram gp;
  gp.seed = seed;
  gp.n = pick_n(rng);
  gp.nprocs = pick_p(rng);
  const int k = 1 + static_cast<int>(rng.pick(4));
  // Budget in whole columns: 6 columns always lowers every statement
  // (<= 3 arrays each); small multipliers force fusion declines and the
  // searcher's share-fraction candidates, large ones let everything fuse.
  gp.memory_budget_elements = gp.n * rng.choose<std::int64_t>({6, 8, 12, 16});

  const std::vector<std::string> pool = {"u", "v", "w", "y", "z"};
  std::vector<std::string> defined = {"x"};
  std::size_t fresh = 0;
  std::vector<std::string> stmts;
  for (int i = 0; i < k; ++i) {
    std::string lhs;
    // Mostly fresh outputs (chains), occasionally an in-place update.
    if (fresh < pool.size() && (defined.size() < 2 || rng.pick(4) != 0)) {
      lhs = pool[fresh++];
    } else {
      lhs = defined[1 + rng.pick(defined.size() - 1)];  // never input x
    }
    stmts.push_back(chain_stmt(rng, lhs, defined));
    if (std::find(defined.begin(), defined.end(), lhs) == defined.end()) {
      defined.push_back(lhs);
    }
  }

  std::ostringstream oss;
  emit_header(oss, gp.n, gp.nprocs, defined, {});
  for (const std::string& s : stmts) {
    emit_forall(oss, s);
  }
  oss << "      end\n";
  gp.source = oss.str();
  gp.statements = k;
  std::ostringstream d;
  d << "chain-" << k << " n=" << gp.n << " p=" << gp.nprocs
    << " mem=" << gp.memory_budget_elements;
  gp.describe = d.str();
  return gp;
}

GeneratedProgram gen_gaxpy(Rng& rng, std::uint64_t seed) {
  GeneratedProgram gp;
  gp.seed = seed;
  gp.n = pick_n(rng);
  gp.nprocs = pick_p(rng);
  gp.memory_budget_elements =
      default_budget(gp.n, gp.nprocs) *
      rng.choose<std::int64_t>({1, 2, 4});
  std::ostringstream oss;
  emit_header(oss, gp.n, gp.nprocs, {"a", "c", "temp"}, {"b"});
  emit_gaxpy_nest(oss);
  oss << "      end\n";
  gp.source = oss.str();
  gp.statements = 1;
  gp.has_gaxpy = true;
  std::ostringstream d;
  d << "gaxpy n=" << gp.n << " p=" << gp.nprocs
    << " mem=" << gp.memory_budget_elements;
  gp.describe = d.str();
  return gp;
}

GeneratedProgram gen_stencil(Rng& rng, std::uint64_t seed) {
  GeneratedProgram gp;
  gp.seed = seed;
  gp.n = pick_n(rng);
  gp.nprocs = pick_p(rng);
  // Budget = 4n(d + w0): the heuristic width lands exactly on w0; larger
  // w0 gives the searcher room to find even-divisor widths.
  const std::int64_t w0 = rng.choose<std::int64_t>({1, 2, 3, 4, 6});
  gp.memory_budget_elements = 4 * gp.n * (1 + w0);
  std::ostringstream oss;
  emit_header(oss, gp.n, gp.nprocs, {"a", "b"}, {});
  oss << "      forall (k=2:n-1)\n"
      << "        b(2:n-1,k) = (a(1:n-2,k) + a(3:n,k) + a(2:n-1,k-1)"
      << " + a(2:n-1,k+1))/4\n"
      << "      end forall\n"
      << "      end\n";
  gp.source = oss.str();
  gp.statements = 1;
  gp.has_stencil = true;
  std::ostringstream d;
  d << "stencil n=" << gp.n << " p=" << gp.nprocs
    << " mem=" << gp.memory_budget_elements;
  gp.describe = d.str();
  return gp;
}

GeneratedProgram gen_mixed(Rng& rng, std::uint64_t seed) {
  GeneratedProgram gp;
  gp.seed = seed;
  gp.n = pick_n(rng);
  gp.nprocs = pick_p(rng);
  gp.memory_budget_elements =
      default_budget(gp.n, gp.nprocs) * rng.choose<std::int64_t>({1, 2});

  // Elementwise statements around the GAXPY barrier operate on arrays the
  // reduction never touches: the GAXPY may reorganize a/c to row-major
  // storage, and an elementwise sweep over a reorganized array would be a
  // (correctly rejected) storage conflict, not a test of the search.
  const int pre = static_cast<int>(rng.pick(3));        // 0..2
  const int post = 1 + static_cast<int>(rng.pick(2));   // 1..2
  const std::vector<std::string> pool = {"u", "v", "w"};
  std::vector<std::string> defined = {"x"};
  std::size_t fresh = 0;
  std::vector<std::string> pre_stmts;
  std::vector<std::string> post_stmts;
  for (int i = 0; i < pre + post; ++i) {
    std::string lhs;
    if (fresh < pool.size()) {
      lhs = pool[fresh++];
    } else {
      lhs = defined[1 + rng.pick(defined.size() - 1)];
    }
    (i < pre ? pre_stmts : post_stmts)
        .push_back(chain_stmt(rng, lhs, defined));
    if (std::find(defined.begin(), defined.end(), lhs) == defined.end()) {
      defined.push_back(lhs);
    }
  }

  std::vector<std::string> col = defined;
  col.push_back("a");
  col.push_back("c");
  col.push_back("temp");
  std::ostringstream oss;
  emit_header(oss, gp.n, gp.nprocs, col, {"b"});
  for (const std::string& s : pre_stmts) {
    emit_forall(oss, s);
  }
  emit_gaxpy_nest(oss);
  for (const std::string& s : post_stmts) {
    emit_forall(oss, s);
  }
  oss << "      end\n";
  gp.source = oss.str();
  gp.statements = pre + 1 + post;
  gp.has_gaxpy = true;
  std::ostringstream d;
  d << "mixed-" << pre << "+gaxpy+" << post << " n=" << gp.n
    << " p=" << gp.nprocs << " mem=" << gp.memory_budget_elements;
  gp.describe = d.str();
  return gp;
}

}  // namespace

GeneratedProgram generate_program(std::uint64_t seed) {
  // Mix the seed so consecutive seeds land on unrelated streams.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL);
  switch (rng.pick(4)) {
    case 0:
      return gen_chain(rng, seed);
    case 1:
      return gen_gaxpy(rng, seed);
    case 2:
      return gen_stencil(rng, seed);
    default:
      return gen_mixed(rng, seed);
  }
}

}  // namespace oocc::progen
