// Seeded random HPF program generator for differential testing.
//
// generate_program(seed) is a pure function of the seed: same seed, same
// program text, same budget — byte for byte. Programs are drawn from the
// compiler's supported envelope (elementwise chains, GAXPY reduction
// nests, halo stencils, and mixed chains around a GAXPY barrier) with
// sizes, processor counts and memory budgets varied per seed, and budgets
// chosen so the heuristic pipeline always lowers them (the search
// harness's baseline must exist; *tight* budgets still exercise the
// fusion-declines and share-scaling paths). The differential harness
// (search_test.cpp) compiles each program under the heuristic and search
// optimizers and proves them equivalent and cost-ordered.
#pragma once

#include <cstdint>
#include <string>

namespace oocc::progen {

struct GeneratedProgram {
  std::uint64_t seed = 0;
  std::string source;    ///< HPF source text (hpf::parse-ready)
  std::string describe;  ///< one line: shape, n, p, budget — for messages
  std::int64_t n = 0;    ///< global array extent (square n x n arrays)
  int nprocs = 1;
  std::int64_t memory_budget_elements = 0;
  int statements = 0;    ///< top-level statements in the sequence
  bool has_gaxpy = false;
  bool has_stencil = false;
};

/// Deterministically generates the seed's program. Every program compiles
/// under default CompileOptions with the embedded memory budget.
GeneratedProgram generate_program(std::uint64_t seed);

}  // namespace oocc::progen
