// Robustness tests: parser fuzzing (malformed input must produce coded
// diagnostics, never crashes), failure propagation across the SPMD
// machine (a disk fault on one rank must abort the whole region cleanly),
// and resource-exhaustion paths through the full compiled pipeline.
#include <gtest/gtest.h>

#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/gaxpy/gaxpy.hpp"
#include "oocc/hpf/parser.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/hpf/sema.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/faults.hpp"
#include "oocc/util/rng.hpp"

namespace oocc {
namespace {

using io::DiskModel;
using io::StorageOrder;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

// ----------------------------------------------------------- parser fuzz

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  // Random printable strings: the lexer/parser must either succeed or
  // throw oocc::Error — never crash or hang.
  Rng rng(0xF00D);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 ()=,:*+-/!$\n\t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string source;
    const std::size_t len =
        static_cast<std::size_t>(rng.next_int(0, 300));
    for (std::size_t i = 0; i < len; ++i) {
      source.push_back(
          alphabet[rng.next_below(alphabet.size())]);
    }
    try {
      hpf::Program p = hpf::parse(source);
      (void)hpf::to_string(p);
    } catch (const Error&) {
      // expected for most inputs
    }
  }
}

TEST(ParserFuzzTest, MutatedValidProgramNeverCrashes) {
  // Single-character mutations of a valid program: common typo class.
  const std::string base = hpf::gaxpy_source(16, 2);
  const std::string chars = "abxyz019(),:=*+-/ \n";
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = chars[rng.next_below(chars.size())];
    try {
      compiler::CompileOptions options;
      options.memory_budget_elements = 4096;
      (void)compiler::compile_source(mutated, options);
    } catch (const Error&) {
      // parse/sema/compile errors are all acceptable outcomes
    }
  }
}

TEST(ParserFuzzTest, TokenSoupNeverCrashes) {
  // Sequences of valid tokens in random order.
  const char* tokens[] = {"do",   "forall", "end",  "real", "sum",
                          "(",    ")",      ",",    ":",    "::",
                          "=",    "*",      "+",    "a",    "b",
                          "1",    "42",     "\n",   "!hpf$", "align",
                          "with", "block",  "onto", "processors"};
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 500; ++trial) {
    std::string source;
    const int count = static_cast<int>(rng.next_int(1, 60));
    for (int i = 0; i < count; ++i) {
      source += tokens[rng.next_below(std::size(tokens))];
      source += " ";
    }
    source += "\n";
    try {
      (void)hpf::analyze(hpf::parse(source));
    } catch (const Error&) {
    }
  }
}

// --------------------------------------------------- failure propagation

TEST(FailurePropagationTest, DiskFaultAbortsWholeRegion) {
  // Rank 1's LAF fails mid-multiplication; every rank (including those
  // blocked in the global sum) must unwind, and the error must surface.
  const std::int64_t n = 16;
  const int p = 4;
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  // Rank-filtered spec: only rank 1's third backend read fails.
  faults::ScopedFaultPlan plan("read:rank=1,nth=3,kind=permanent");
  try {
    machine.run([&](SpmdContext& ctx) {
      runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                                hpf::column_block(n, n, p),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                                hpf::row_block(n, n, p),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      runtime::OutOfCoreArray c(ctx, dir.path(), "c",
                                hpf::column_block(n, n, p),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      a.initialize(ctx, [](std::int64_t, std::int64_t) { return 1.0; },
                   n * n);
      b.initialize(ctx, [](std::int64_t, std::int64_t) { return 1.0; },
                   n * n);
      gaxpy::GaxpyConfig config;
      config.slab_a_elements = n * 2;
      config.slab_b_elements = n * 2;
      config.slab_c_elements = n * 2;
      runtime::MemoryBudget budget(1 << 20);
      gaxpy::ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);
    });
    FAIL() << "expected the region to abort";
  } catch (const Error& e) {
    // Either the faulting rank's IoError or a peer's abort notification
    // surfaces, depending on rank completion order; both are correct.
    EXPECT_TRUE(e.code() == ErrorCode::kIoError ||
                e.code() == ErrorCode::kRuntimeError)
        << e.what();
  }
}

TEST(FailurePropagationTest, MachineUsableAfterDiskFaultAbort) {
  const std::int64_t n = 8;
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  faults::ScopedFaultPlan plan("read:rank=0,nth=1,kind=permanent");
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 io::LocalArrayFile laf(
                     dir.path() / ("x" + std::to_string(ctx.rank())), n, n,
                     StorageOrder::kColumnMajor, DiskModel::zero());
                 std::vector<double> buf(static_cast<std::size_t>(n * n));
                 laf.read_full(ctx, std::span<double>(buf.data(), buf.size()));
                 sim::barrier(ctx);
               }),
               Error);
  // Clean region afterwards.
  machine.run([](SpmdContext& ctx) { sim::barrier(ctx); });
}

// ----------------------------------------------------- memory exhaustion

TEST(ResourceTest, KernelRefusesBudgetSmallerThanWorkingSet) {
  const std::int64_t n = 16;
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  try {
    machine.run([&](SpmdContext& ctx) {
      runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                                hpf::column_block(n, n, 2),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                                hpf::row_block(n, n, 2),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      runtime::OutOfCoreArray c(ctx, dir.path(), "c",
                                hpf::column_block(n, n, 2),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      gaxpy::GaxpyConfig config;
      config.slab_a_elements = n * 4;
      config.slab_b_elements = n * 4;
      config.slab_c_elements = n * 4;
      runtime::MemoryBudget budget(n);  // cannot even hold one A slab
      gaxpy::ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);
    });
    FAIL();
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kResourceExhausted ||
                e.code() == ErrorCode::kRuntimeError)
        << e.what();
  }
}

TEST(ResourceTest, CompilerRejectsImpossibleBudgetBeforeExecution) {
  compiler::CompileOptions options;
  options.memory_budget_elements = 10;  // floors alone exceed this
  try {
    compiler::compile_source(hpf::gaxpy_source(256, 4), options);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    EXPECT_NE(std::string(e.what()).find("minimum working set"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace oocc
