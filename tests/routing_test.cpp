// Equivalence and wire-format tests for the block-structured routing
// layer: block-routed redistribute/transpose/two_phase_load must produce
// bit-identical arrays to the per-element fallback across every
// distribution-kind pair, block arrivals must coalesce into the same
// rectangular writes, and the header+payload all-to-all must route and
// reuse buffers correctly.
#include <gtest/gtest.h>

#include "oocc/io/gaf.hpp"
#include "oocc/runtime/redistribute.hpp"
#include "oocc/runtime/twophase.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc::runtime {
namespace {

using hpf::ArrayDistribution;
using hpf::DistAxis;
using hpf::DistKind;
using io::DiskModel;
using io::GlobalArrayFile;
using io::StorageOrder;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

double gen(std::int64_t r, std::int64_t c) {
  // Bit-exactness matters: any reordering bug that swaps two elements
  // must change the gathered array.
  return static_cast<double>(r * 977 + c * 13 + 1);
}

/// Every (axis, kind) combination the routing layer must handle, with a
/// block size that does not divide the extents below.
std::vector<ArrayDistribution> all_distributions(std::int64_t rows,
                                                 std::int64_t cols, int p) {
  std::vector<ArrayDistribution> dists;
  for (DistAxis axis : {DistAxis::kRows, DistAxis::kCols}) {
    dists.emplace_back(rows, cols, axis, DistKind::kBlock, p);
    dists.emplace_back(rows, cols, axis, DistKind::kCyclic, p);
    dists.emplace_back(rows, cols, axis, DistKind::kBlockCyclic, p, 2);
    dists.emplace_back(rows, cols, axis, DistKind::kBlockCyclic, p, 3);
  }
  return dists;
}

std::vector<double> run_redistribute(const ArrayDistribution& sd,
                                     const ArrayDistribution& dd,
                                     RouteMode mode,
                                     std::int64_t budget) {
  const int p = sd.nprocs();
  TempDir dir;
  std::vector<double> global;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray src(ctx, dir.path(), "s", sd, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    OutOfCoreArray dst(ctx, dir.path(), "d", dd, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    src.initialize(ctx, gen, budget);
    redistribute(ctx, src, dst, budget, mode);
    std::vector<double> g = dst.gather_global(
        ctx, dd.global_rows() * dd.global_cols());
    if (ctx.rank() == 0) {
      global = std::move(g);
    }
  });
  return global;
}

TEST(BlockRoutingEquivalenceTest, RedistributeMatchesElementPathForAllPairs) {
  // Non-divisible extents (10 x 9 over 3 procs) exercise short tail runs.
  const std::int64_t rows = 10;
  const std::int64_t cols = 9;
  const int p = 3;
  const std::vector<ArrayDistribution> dists =
      all_distributions(rows, cols, p);
  for (const ArrayDistribution& sd : dists) {
    for (const ArrayDistribution& dd : dists) {
      const std::vector<double> element =
          run_redistribute(sd, dd, RouteMode::kElement, 24);
      const std::vector<double> block =
          run_redistribute(sd, dd, RouteMode::kBlock, 24);
      ASSERT_EQ(element.size(), block.size());
      ASSERT_EQ(element, block)
          << "src=" << sd.to_string() << " dst=" << dd.to_string();
      // Both must also be correct, not merely identical.
      for (std::int64_t c = 0; c < cols; ++c) {
        for (std::int64_t r = 0; r < rows; ++r) {
          ASSERT_DOUBLE_EQ(block[static_cast<std::size_t>(c * rows + r)],
                           gen(r, c))
              << "src=" << sd.to_string() << " dst=" << dd.to_string();
        }
      }
    }
  }
}

TEST(BlockRoutingEquivalenceTest, TransposeMatchesElementPathForAllPairs) {
  const std::int64_t rows = 9;
  const std::int64_t cols = 10;
  const int p = 3;
  // dst shape is the transpose of src's.
  const std::vector<ArrayDistribution> sdists =
      all_distributions(rows, cols, p);
  const std::vector<ArrayDistribution> ddists =
      all_distributions(cols, rows, p);
  for (const ArrayDistribution& sd : sdists) {
    for (const ArrayDistribution& dd : ddists) {
      std::vector<double> results[2];
      for (int m = 0; m < 2; ++m) {
        const RouteMode mode = m == 0 ? RouteMode::kElement
                                      : RouteMode::kBlock;
        TempDir dir;
        Machine machine(p, MachineCostModel::zero());
        machine.run([&](SpmdContext& ctx) {
          OutOfCoreArray src(ctx, dir.path(), "s", sd,
                             StorageOrder::kColumnMajor, DiskModel::zero());
          OutOfCoreArray dst(ctx, dir.path(), "d", dd,
                             StorageOrder::kColumnMajor, DiskModel::zero());
          src.initialize(ctx, gen, 20);
          transpose(ctx, src, dst, 20, mode);
          std::vector<double> g =
              dst.gather_global(ctx, rows * cols);
          if (ctx.rank() == 0) {
            results[m] = std::move(g);
          }
        });
      }
      ASSERT_EQ(results[0], results[1])
          << "src=" << sd.to_string() << " dst=" << dd.to_string();
      for (std::int64_t c = 0; c < rows; ++c) {    // dst cols = src rows
        for (std::int64_t r = 0; r < cols; ++r) {  // dst rows = src cols
          ASSERT_DOUBLE_EQ(results[1][static_cast<std::size_t>(c * cols + r)],
                           gen(c, r))
              << "src=" << sd.to_string() << " dst=" << dd.to_string();
        }
      }
    }
  }
}

TEST(BlockRoutingEquivalenceTest, TwoPhaseLoadMatchesElementPathForAllDests) {
  const std::int64_t rows = 10;
  const std::int64_t cols = 9;
  const int p = 3;
  for (const ArrayDistribution& dd : all_distributions(rows, cols, p)) {
    std::vector<double> results[2];
    for (int m = 0; m < 2; ++m) {
      const RouteMode mode = m == 0 ? RouteMode::kElement : RouteMode::kBlock;
      TempDir dir;
      GlobalArrayFile gaf(dir.file("g.bin"), rows, cols,
                          StorageOrder::kColumnMajor, DiskModel::zero());
      gaf.fill_host(gen);
      Machine machine(p, MachineCostModel::zero());
      machine.run([&](SpmdContext& ctx) {
        OutOfCoreArray dst(ctx, dir.path(), "d", dd,
                           StorageOrder::kColumnMajor, DiskModel::zero());
        two_phase_load(ctx, gaf, dst, rows * 2, mode);
        std::vector<double> g = dst.gather_global(ctx, rows * cols);
        if (ctx.rank() == 0) {
          results[m] = std::move(g);
        }
      });
    }
    ASSERT_EQ(results[0], results[1]) << "dst=" << dd.to_string();
    for (std::int64_t c = 0; c < cols; ++c) {
      for (std::int64_t r = 0; r < rows; ++r) {
        ASSERT_DOUBLE_EQ(results[1][static_cast<std::size_t>(c * rows + r)],
                         gen(r, c))
            << "dst=" << dd.to_string();
      }
    }
  }
}

TEST(BlockRoutingTest, BlockPathShipsFewerSimulatedBytes) {
  // The point of the tentpole: the same redistribution must move ~3x
  // fewer bytes as ownership-run descriptors than as per-element triples.
  const std::int64_t n = 32;
  const int p = 4;
  std::uint64_t bytes[2];
  for (int m = 0; m < 2; ++m) {
    const RouteMode mode = m == 0 ? RouteMode::kElement : RouteMode::kBlock;
    TempDir dir;
    Machine machine(p, MachineCostModel::zero());
    sim::RunReport report = machine.run([&](SpmdContext& ctx) {
      OutOfCoreArray src(ctx, dir.path(), "s", hpf::column_block(n, n, p),
                         StorageOrder::kColumnMajor, DiskModel::zero());
      OutOfCoreArray dst(ctx, dir.path(), "d", hpf::row_block(n, n, p),
                         StorageOrder::kColumnMajor, DiskModel::zero());
      src.initialize(ctx, gen, n * 4);
      sim::barrier(ctx);
      ctx.reset_accounting();
      redistribute(ctx, src, dst, n * 4, mode);
    });
    bytes[m] = report.total_bytes_sent();
  }
  EXPECT_GE(bytes[0], 2 * bytes[1])
      << "element path sent " << bytes[0] << " B, block path " << bytes[1]
      << " B";
}

TEST(BlockRoutingTest, WriteRoutedBlocksCoalescesIntoOneRectangle) {
  // Column blocks covering a full-height rectangle must merge into a
  // single section write, exactly like the element path used to.
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray dst(ctx, dir.path(), "d", hpf::column_block(8, 8, 1),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    std::vector<RoutedBlock> blocks;
    std::vector<double> payload;
    for (std::int64_t c = 2; c < 6; ++c) {
      blocks.push_back(RoutedBlock{0, c, 8, 1});
      for (std::int64_t r = 0; r < 8; ++r) {
        payload.push_back(static_cast<double>(10 * r + c));
      }
    }
    dst.laf().reset_stats();
    RouteScratch scratch;
    write_routed_blocks(
        ctx, dst, std::span<const RoutedBlock>(blocks.data(), blocks.size()),
        std::span<const double>(payload.data(), payload.size()), scratch);
    EXPECT_EQ(dst.laf().stats().write_requests, 1u);
    std::vector<double> all(64);
    dst.laf().read_full(ctx, std::span<double>(all.data(), all.size()));
    EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(3 * 8 + 4)], 43.0);
  });
}

TEST(BlockRoutingTest, PayloadDescriptorMismatchRejected) {
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 OutOfCoreArray dst(ctx, dir.path(), "d",
                                    hpf::column_block(8, 8, 1),
                                    StorageOrder::kColumnMajor,
                                    DiskModel::zero());
                 const RoutedBlock b{0, 0, 8, 1};
                 const double too_short[4] = {};
                 RouteScratch scratch;
                 write_routed_blocks(ctx, dst,
                                     std::span<const RoutedBlock>(&b, 1),
                                     std::span<const double>(too_short, 4),
                                     scratch);
               }),
               Error);
}

TEST(AlltoallvHpTest, RoutesHeadersAndPayloadIndependently) {
  for (int p : {1, 2, 3, 5}) {
    Machine machine(p, MachineCostModel::unit_test());
    machine.run([&](SpmdContext& ctx) {
      const std::size_t up = static_cast<std::size_t>(p);
      std::vector<std::vector<int>> out_h(up), in_h(up);
      std::vector<std::vector<double>> out_p(up), in_p(up);
      // Two rounds through the same buffers: round 2 must not see stale
      // round-1 state (capacity is reused, contents are replaced).
      for (int round = 0; round < 2; ++round) {
        for (std::size_t d = 0; d < up; ++d) {
          out_h[d].assign(1, 1000 * round + 10 * ctx.rank() +
                                 static_cast<int>(d));
          out_p[d].assign(static_cast<std::size_t>(d) + 1,
                          static_cast<double>(round + ctx.rank()));
        }
        sim::alltoallv_hp(ctx, out_h, out_p, in_h, in_p);
        for (int s = 0; s < p; ++s) {
          const std::size_t us = static_cast<std::size_t>(s);
          ASSERT_EQ(in_h[us].size(), 1u);
          EXPECT_EQ(in_h[us][0], 1000 * round + 10 * s + ctx.rank());
          ASSERT_EQ(in_p[us].size(),
                    static_cast<std::size_t>(ctx.rank()) + 1);
          for (double v : in_p[us]) {
            EXPECT_DOUBLE_EQ(v, static_cast<double>(round + s));
          }
        }
      }
    });
  }
}

TEST(AlltoallvHpTest, MismatchedBufferCountsRejected) {
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([](SpmdContext& ctx) {
                 std::vector<std::vector<int>> out_h(1), in_h(2);
                 std::vector<std::vector<double>> out_p(2), in_p(2);
                 sim::alltoallv_hp(ctx, out_h, out_p, in_h, in_p);
               }),
               Error);
}

}  // namespace
}  // namespace oocc::runtime
