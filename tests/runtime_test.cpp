// Tests for the out-of-core runtime: slab iteration, ICLA buffers and the
// memory budget, out-of-core arrays, redistribution, storage
// reorganization, and prefetch overlap modelling.
#include <gtest/gtest.h>

#include "oocc/runtime/icla.hpp"
#include "oocc/runtime/ooc_array.hpp"
#include "oocc/runtime/prefetch.hpp"
#include "oocc/runtime/redistribute.hpp"
#include "oocc/runtime/reorganize.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/rng.hpp"

namespace oocc::runtime {
namespace {

using hpf::column_block;
using hpf::row_block;
using io::DiskModel;
using io::Section;
using io::StorageOrder;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

TEST(SlabIteratorTest, ColumnSlabsTileExactly) {
  // 8 x 10 local array, capacity 24 elements -> 3 columns per slab.
  SlabIterator it(8, 10, SlabOrientation::kColumnSlabs, 24);
  EXPECT_EQ(it.slab_span(), 3);
  EXPECT_EQ(it.count(), 4);
  EXPECT_EQ(it.slab_elements(), 24);
  std::int64_t covered = 0;
  for (std::int64_t i = 0; i < it.count(); ++i) {
    const Section s = it.section(i);
    EXPECT_EQ(s.row0, 0);
    EXPECT_EQ(s.row1, 8);
    covered += s.cols();
  }
  EXPECT_EQ(covered, 10);
  EXPECT_EQ(it.section(3).cols(), 1);  // final partial slab
}

TEST(SlabIteratorTest, RowSlabsTileExactly) {
  SlabIterator it(10, 8, SlabOrientation::kRowSlabs, 24);
  EXPECT_EQ(it.slab_span(), 3);
  EXPECT_EQ(it.count(), 4);
  std::int64_t covered = 0;
  for (std::int64_t i = 0; i < it.count(); ++i) {
    const Section s = it.section(i);
    EXPECT_EQ(s.col0, 0);
    EXPECT_EQ(s.col1, 8);
    covered += s.rows();
  }
  EXPECT_EQ(covered, 10);
}

TEST(SlabIteratorTest, TinyCapacityClampsToOneLine) {
  SlabIterator it(100, 10, SlabOrientation::kColumnSlabs, 5);
  EXPECT_EQ(it.slab_span(), 1);  // capacity below one column still works
  EXPECT_EQ(it.count(), 10);
}

TEST(SlabIteratorTest, WholeArrayIsOneSlab) {
  SlabIterator it(8, 8, SlabOrientation::kRowSlabs, 64);
  EXPECT_EQ(it.count(), 1);
  const Section s = it.section(0);
  EXPECT_EQ(s.elements(), 64);
}

TEST(SlabIteratorTest, SlabRatioMatchesPaperConvention) {
  // Paper: slab ratio 1/8 means 8 slabs per OCLA.
  const std::int64_t local_elems = 1024 * 256;
  SlabIterator it(1024, 256, SlabOrientation::kColumnSlabs, local_elems / 8);
  EXPECT_EQ(it.count(), 8);
}

TEST(SlabIteratorTest, OutOfRangeSection) {
  SlabIterator it(4, 4, SlabOrientation::kColumnSlabs, 8);
  EXPECT_THROW(it.section(-1), Error);
  EXPECT_THROW(it.section(it.count()), Error);
}

TEST(MemoryBudgetTest, ReserveAndRelease) {
  MemoryBudget b(100);
  b.reserve(60, "x");
  EXPECT_EQ(b.remaining(), 40);
  b.reserve(40, "y");
  EXPECT_EQ(b.remaining(), 0);
  b.release(60);
  EXPECT_EQ(b.remaining(), 60);
}

TEST(MemoryBudgetTest, OverReleaseClampsAndIsCounted) {
  // Regression: release() used to clamp silently, so a double release
  // could mask a real leak elsewhere. It must clamp *and* be observable.
  MemoryBudget b(100);
  b.reserve(30, "x");
  b.release(30);
  EXPECT_EQ(b.over_releases(), 0);
  b.release(30);  // double release
  EXPECT_EQ(b.used(), 0);
  EXPECT_EQ(b.remaining(), 100);
  EXPECT_EQ(b.over_releases(), 1);
  b.reserve(10, "y");
  b.release(25);  // partial over-release: clamps to zero, not negative
  EXPECT_EQ(b.used(), 0);
  EXPECT_EQ(b.over_releases(), 2);
  // The accounting still works after the event.
  b.reserve(100, "z");
  EXPECT_EQ(b.remaining(), 0);
}

TEST(MemoryBudgetTest, OversubscriptionThrowsResourceExhausted) {
  MemoryBudget b(100);
  b.reserve(80, "big");
  try {
    b.reserve(21, "straw");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
    EXPECT_NE(std::string(e.what()).find("straw"), std::string::npos);
  }
}

TEST(IclaBufferTest, RegistersAgainstBudgetRaii) {
  MemoryBudget b(100);
  {
    IclaBuffer icla(b, 64, "slab");
    EXPECT_EQ(b.used(), 64);
    EXPECT_THROW(IclaBuffer(b, 64, "second"), Error);
  }
  EXPECT_EQ(b.used(), 0);
}

TEST(IclaBufferTest, LoadStoreRoundTrip) {
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    io::LocalArrayFile laf(dir.file("x.laf"), 6, 6,
                           StorageOrder::kColumnMajor, DiskModel::zero());
    MemoryBudget budget(100);
    IclaBuffer icla(budget, 12, "win");
    icla.reset_section(Section{0, 6, 1, 3});
    for (std::int64_t c = 0; c < 2; ++c) {
      for (std::int64_t r = 0; r < 6; ++r) {
        icla.at(r, c) = static_cast<double>(10 * r + c);
      }
    }
    icla.store(ctx, laf);

    IclaBuffer readback(budget, 12, "rb");
    readback.load(ctx, laf, Section{0, 6, 1, 3});
    EXPECT_DOUBLE_EQ(readback.at(3, 1), 31.0);
    EXPECT_DOUBLE_EQ(readback.at(0, 0), 0.0);
  });
}

TEST(IclaBufferTest, SectionLargerThanCapacityThrows) {
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    (void)ctx;
    MemoryBudget budget(1000);
    IclaBuffer icla(budget, 10, "tiny");
    EXPECT_THROW(icla.reset_section(Section{0, 10, 0, 10}), Error);
  });
}

// ---------------------------------------------------------------------
// OutOfCoreArray

TEST(OutOfCoreArrayTest, InitializeAndGather) {
  TempDir dir;
  Machine machine(4, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray a(ctx, dir.path(), "a", column_block(8, 8, 4),
                     StorageOrder::kColumnMajor, DiskModel::zero());
    EXPECT_EQ(a.local_rows(), 8);
    EXPECT_EQ(a.local_cols(), 2);
    a.initialize(
        ctx, [](std::int64_t r, std::int64_t c) {
          return static_cast<double>(100 * r + c);
        },
        16);
    std::vector<double> global = a.gather_global(ctx, 16);
    if (ctx.rank() == 0) {
      ASSERT_EQ(global.size(), 64u);
      for (std::int64_t c = 0; c < 8; ++c) {
        for (std::int64_t r = 0; r < 8; ++r) {
          EXPECT_DOUBLE_EQ(global[static_cast<std::size_t>(c * 8 + r)],
                           static_cast<double>(100 * r + c));
        }
      }
    } else {
      EXPECT_TRUE(global.empty());
    }
  });
}

TEST(OutOfCoreArrayTest, RowBlockGlobalIndexing) {
  TempDir dir;
  Machine machine(4, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray b(ctx, dir.path(), "b", row_block(8, 8, 4),
                     StorageOrder::kColumnMajor, DiskModel::zero());
    EXPECT_EQ(b.local_rows(), 2);
    EXPECT_EQ(b.local_cols(), 8);
    // Local row 1 on rank r is global row 2r + 1.
    EXPECT_EQ(b.ocla().global_row(1), ctx.rank() * 2 + 1);
    b.initialize(
        ctx,
        [](std::int64_t r, std::int64_t c) {
          return static_cast<double>(r * 8 + c);
        },
        64);
    std::vector<double> global = b.gather_global(ctx, 64);
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(global[static_cast<std::size_t>(3 * 8 + 5)],
                       static_cast<double>(5 * 8 + 3));
    }
  });
}

TEST(OutOfCoreArrayTest, EmptyLocalPieceRejected) {
  TempDir dir;
  Machine machine(4, MachineCostModel::zero());
  // 3 columns over 4 processors: block = ceil(3/4) = 1, proc 3 owns none.
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 OutOfCoreArray a(ctx, dir.path(), "a", column_block(4, 3, 4),
                                  StorageOrder::kColumnMajor,
                                  DiskModel::zero());
               }),
               Error);
}

// ---------------------------------------------------------------------
// Redistribution (§2.3)

class RedistributeTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Procs, RedistributeTest, ::testing::Values(1, 2, 4));

TEST_P(RedistributeTest, ColumnBlockToRowBlockPreservesContent) {
  const int p = GetParam();
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    const std::int64_t n = 12;
    OutOfCoreArray src(ctx, dir.path(), "src", column_block(n, n, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray dst(ctx, dir.path(), "dst", row_block(n, n, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    src.initialize(
        ctx,
        [](std::int64_t r, std::int64_t c) {
          return static_cast<double>(1000 * r + c);
        },
        40);
    redistribute(ctx, src, dst, 40);
    std::vector<double> global = dst.gather_global(ctx, 40);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * n + r)],
                           static_cast<double>(1000 * r + c))
              << "r=" << r << " c=" << c << " p=" << p;
        }
      }
    }
  });
}

TEST_P(RedistributeTest, BlockToCyclicPreservesContent) {
  const int p = GetParam();
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    const std::int64_t n = 8;
    OutOfCoreArray src(ctx, dir.path(), "s2", column_block(n, n, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    hpf::ArrayDistribution cyclic(n, n, hpf::DistAxis::kCols,
                                  hpf::DistKind::kCyclic, p);
    OutOfCoreArray dst(ctx, dir.path(), "d2", cyclic,
                       StorageOrder::kColumnMajor, DiskModel::zero());
    src.initialize(
        ctx,
        [](std::int64_t r, std::int64_t c) {
          return static_cast<double>(r + c * 0.5);
        },
        32);
    redistribute(ctx, src, dst, 32);
    std::vector<double> global = dst.gather_global(ctx, 32);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * n + r)],
                           static_cast<double>(r + c * 0.5));
        }
      }
    }
  });
}

TEST(RedistributeTest, ShapeMismatchRejected) {
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(
      machine.run([&](SpmdContext& ctx) {
        OutOfCoreArray src(ctx, dir.path(), "sa", column_block(8, 8, 2),
                           StorageOrder::kColumnMajor, DiskModel::zero());
        OutOfCoreArray dst(ctx, dir.path(), "da", column_block(8, 6, 2),
                           StorageOrder::kColumnMajor, DiskModel::zero());
        redistribute(ctx, src, dst, 16);
      }),
      Error);
}

TEST(RedistributeTest, RandomDistributionPairsPreserveContent) {
  // Property: redistribution between random (axis, kind) pairs is a
  // content-preserving permutation of the global array.
  oocc::Rng rng(314);
  const std::int64_t n = 8;
  const int p = 2;
  for (int trial = 0; trial < 10; ++trial) {
    auto random_dist = [&]() {
      const hpf::DistAxis axis = rng.next_below(2) == 0
                                     ? hpf::DistAxis::kRows
                                     : hpf::DistAxis::kCols;
      const int pick = static_cast<int>(rng.next_int(0, 2));
      const hpf::DistKind kind = pick == 0   ? hpf::DistKind::kBlock
                                 : pick == 1 ? hpf::DistKind::kCyclic
                                             : hpf::DistKind::kBlockCyclic;
      return hpf::ArrayDistribution(n, n, axis, kind, p,
                                    rng.next_int(1, 3));
    };
    const hpf::ArrayDistribution sd = random_dist();
    const hpf::ArrayDistribution dd = random_dist();
    TempDir dir;
    Machine machine(p, MachineCostModel::zero());
    machine.run([&](SpmdContext& ctx) {
      OutOfCoreArray src(ctx, dir.path(), "s", sd,
                         StorageOrder::kColumnMajor, DiskModel::zero());
      OutOfCoreArray dst(ctx, dir.path(), "d", dd,
                         StorageOrder::kColumnMajor, DiskModel::zero());
      src.initialize(
          ctx,
          [](std::int64_t r, std::int64_t c) {
            return static_cast<double>(r * 31 + c * 3);
          },
          24);
      redistribute(ctx, src, dst, 24);
      std::vector<double> global = dst.gather_global(ctx, 64);
      if (ctx.rank() == 0) {
        for (std::int64_t c = 0; c < n; ++c) {
          for (std::int64_t r = 0; r < n; ++r) {
            ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * n + r)],
                             static_cast<double>(r * 31 + c * 3))
                << "trial=" << trial << " src=" << sd.to_string()
                << " dst=" << dd.to_string();
          }
        }
      }
    });
  }
}

TEST(RedistributeTest, BulkArrivalsCoalesceIntoRectangleWrites) {
  // write_routed_elements must merge a whole local rectangle into one
  // section write (one request when it spans full local height).
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray dst(ctx, dir.path(), "d", hpf::column_block(8, 8, 1),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    std::vector<RoutedElement> elems;
    for (std::int64_t c = 2; c < 6; ++c) {
      for (std::int64_t r = 0; r < 8; ++r) {
        elems.push_back(
            RoutedElement{r, c, static_cast<double>(10 * r + c)});
      }
    }
    dst.laf().reset_stats();
    write_routed_elements(ctx, dst, elems);
    // Full-height columns 2..5: one coalesced extent.
    EXPECT_EQ(dst.laf().stats().write_requests, 1u);
    std::vector<double> all(64);
    dst.laf().read_full(ctx, std::span<double>(all.data(), all.size()));
    EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(3 * 8 + 4)], 43.0);
  });
}

// ---------------------------------------------------------------------
// Storage reorganization (§4.1)

TEST(ReorganizeTest, ColumnToRowMajorPreservesDataAndChangesExtents) {
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    io::LocalArrayFile src(dir.file("cm.laf"), 8, 8,
                           StorageOrder::kColumnMajor, DiskModel::zero());
    io::LocalArrayFile dst(dir.file("rm.laf"), 8, 8, StorageOrder::kRowMajor,
                           DiskModel::zero());
    std::vector<double> all(64);
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<double>(i * 3 + 1);
    }
    src.write_full(ctx, std::span<const double>(all.data(), all.size()));
    reorganize_storage(ctx, src, dst, 16);

    // Row slabs are now a single extent.
    EXPECT_EQ(dst.section_request_count(Section{2, 4, 0, 8}), 1u);

    std::vector<double> back(64);
    dst.read_full(ctx, std::span<double>(back.data(), back.size()));
    EXPECT_EQ(back, all);
  });
}

TEST(ReorganizeTest, ReturnsRequestCount) {
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    io::LocalArrayFile src(dir.file("s.laf"), 4, 8,
                           StorageOrder::kColumnMajor, DiskModel::zero());
    io::LocalArrayFile dst(dir.file("d.laf"), 4, 8, StorageOrder::kRowMajor,
                           DiskModel::zero());
    src.fill(ctx, 1.0);
    src.reset_stats();
    // Budget of 8 elements = 2 columns per slab -> 4 slabs. Reads: 1
    // request each (contiguous in source). Writes: 4 rows x 4 slabs = 16.
    const std::uint64_t requests = reorganize_storage(ctx, src, dst, 8);
    EXPECT_EQ(requests, 4u + 16u);
  });
}

TEST(ReorganizeTest, ShapeMismatchRejected) {
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  EXPECT_THROW(
      machine.run([&](SpmdContext& ctx) {
        (void)ctx;
        io::LocalArrayFile a(dir.file("a.laf"), 4, 4,
                             StorageOrder::kColumnMajor, DiskModel::zero());
        io::LocalArrayFile b(dir.file("b.laf"), 4, 5,
                             StorageOrder::kRowMajor, DiskModel::zero());
        sim::Machine inner(1, MachineCostModel::zero());
        // Call directly in this context.
        reorganize_storage(ctx, a, b, 8);
      }),
      Error);
}

// ---------------------------------------------------------------------
// Prefetch overlap model

TEST(PrefetchTest, DataIsCorrectWithAndWithoutPrefetch) {
  TempDir dir;
  for (bool prefetch : {false, true}) {
    Machine machine(1, MachineCostModel::zero());
    machine.run([&](SpmdContext& ctx) {
      io::LocalArrayFile laf(dir.file("pf.laf"), 4, 12,
                             StorageOrder::kColumnMajor, DiskModel::zero());
      std::vector<double> all(48);
      for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = static_cast<double>(i);
      }
      laf.write_full(ctx, std::span<const double>(all.data(), all.size()));

      SlabIterator slabs(4, 12, SlabOrientation::kColumnSlabs, 16);
      MemoryBudget budget(1000);
      PrefetchingSlabReader reader(ctx, laf, slabs, budget, "pf", prefetch);
      double sum = 0.0;
      for (std::int64_t s = 0; s < reader.slab_count(); ++s) {
        const IclaBuffer& buf = reader.acquire(ctx, s);
        for (double v : buf.data()) {
          sum += v;
        }
      }
      EXPECT_DOUBLE_EQ(sum, 47.0 * 48.0 / 2.0) << "prefetch=" << prefetch;
    });
  }
}

TEST(PrefetchTest, OverlapHidesIoBehindCompute) {
  // Sequential pattern: acquire slab, compute longer than one slab's I/O
  // time. With prefetch, every I/O after the first overlaps compute, so
  // total time ~ first_read + N*compute; without it ~ N*(read + compute).
  TempDir dir;
  DiskModel disk = DiskModel::unit_test();  // 1 ms overhead, 1 MB/s
  double with_prefetch = 0.0;
  double without_prefetch = 0.0;
  for (bool prefetch : {false, true}) {
    Machine machine(1, MachineCostModel::unit_test());
    sim::RunReport report = machine.run([&](SpmdContext& ctx) {
      io::LocalArrayFile laf(dir.file(prefetch ? "p1.laf" : "p0.laf"), 64,
                             64, StorageOrder::kColumnMajor, disk);
      SlabIterator slabs(64, 64, SlabOrientation::kColumnSlabs, 64 * 8);
      MemoryBudget budget(100000);
      PrefetchingSlabReader reader(ctx, laf, slabs, budget, "x", prefetch);
      for (std::int64_t s = 0; s < reader.slab_count(); ++s) {
        (void)reader.acquire(ctx, s);
        ctx.charge_flops(2e7);  // 20 ms of compute at 1e-9 s/flop
      }
    });
    (prefetch ? with_prefetch : without_prefetch) = report.max_sim_time_s();
  }
  EXPECT_LT(with_prefetch, without_prefetch);
  // 8 slabs; each read is 1 request: 1 ms + 4096B/1MBps ~ 5.1 ms.
  // Without prefetch: 8*(read+compute); with: first read + 8*compute.
  EXPECT_NEAR(without_prefetch - with_prefetch, 7 * (1e-3 + 4096e-6), 1e-3);
}

TEST(PrefetchTest, ResetRestartsSweepAndReReadsSlabs) {
  // A re-sweep after reset() must start at slab 0 again and pay its I/O
  // (cached slabs are invalidated — the cost model counts every pass).
  TempDir dir;
  for (bool prefetch : {false, true}) {
    Machine machine(1, MachineCostModel::zero());
    machine.run([&](SpmdContext& ctx) {
      io::LocalArrayFile laf(dir.file(prefetch ? "r1.laf" : "r0.laf"), 4, 8,
                             StorageOrder::kColumnMajor, DiskModel::zero());
      std::vector<double> all(32);
      for (std::size_t i = 0; i < all.size(); ++i) {
        all[i] = static_cast<double>(i);
      }
      laf.write_full(ctx, std::span<const double>(all.data(), all.size()));
      laf.reset_stats();

      SlabIterator slabs(4, 8, SlabOrientation::kColumnSlabs, 8);
      MemoryBudget budget(1000);
      PrefetchingSlabReader reader(ctx, laf, slabs, budget, "rs", prefetch);
      for (int sweep = 0; sweep < 3; ++sweep) {
        double sum = 0.0;
        for (std::int64_t s = 0; s < reader.slab_count(); ++s) {
          for (double v : reader.acquire(ctx, s).data()) {
            sum += v;
          }
        }
        EXPECT_DOUBLE_EQ(sum, 31.0 * 32.0 / 2.0)
            << "sweep " << sweep << " prefetch=" << prefetch;
        reader.reset();
      }
      // Every sweep re-reads all four slabs (prefetch may read one slab
      // ahead within a sweep, but never carries data across resets).
      EXPECT_GE(laf.stats().read_requests, 12u);
    });
  }
}

TEST(PrefetchTest, OutOfOrderAcquireRejected) {
  TempDir dir;
  Machine machine(1, MachineCostModel::zero());
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 io::LocalArrayFile laf(dir.file("ooo.laf"), 4, 4,
                                        StorageOrder::kColumnMajor,
                                        DiskModel::zero());
                 SlabIterator slabs(4, 4,
                                    SlabOrientation::kColumnSlabs, 8);
                 MemoryBudget budget(1000);
                 PrefetchingSlabReader reader(ctx, laf, slabs, budget, "x",
                                              true);
                 (void)reader.acquire(ctx, 1);
               }),
               Error);
}

}  // namespace
}  // namespace oocc::runtime
