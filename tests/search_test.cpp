// Cost-model-driven global plan search (compiler/search.hpp): a randomized
// differential-testing harness over seeded generated programs (progen.hpp)
// proving, per program, that heuristic and searched plans both verify, run
// bit-identically to each other and to the uncached reference execution,
// match their priced LAF counters exactly, and that the searched plan's
// priced makespan never exceeds the heuristic's (the search's defining
// invariant: the heuristic is candidate 0). Plus: seeded determinism, the
// structured "not searchable" barrier diagnostics, fusion-partition
// enumeration, and the OOCC-V0xx mutation catalogue replayed against
// search-produced plans. OOCC_SEARCH_SOAK=1 unlocks the 200-program soak
// (nightly CI job).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/compiler/search.hpp"
#include "oocc/compiler/verify.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/sim/collectives.hpp"
#include "progen.hpp"

namespace oocc::compiler {
namespace {

using exec::ArrayBindings;
using exec::ExecOptions;
using io::DiskModel;
using io::TempDir;
using progen::GeneratedProgram;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

double gen_input(std::int64_t r, std::int64_t c) {
  return std::sin(static_cast<double>(r * 3 + c * 13)) + 1.25;
}

struct SequenceRun {
  std::map<std::string, std::vector<double>> globals;  ///< gathered arrays
  std::map<std::string, io::IoStats> per_array;        ///< rank-0 LAF stats
  runtime::SlabCacheStats cache;                       ///< rank-0 pool stats
};

/// Executes the sequence on a P-processor machine: initialize the pure
/// inputs deterministically, run one sweep of everything (stencils pinned
/// to max_iters=1 so priced == measured holds), gather every array.
SequenceRun run_sequence(const std::vector<NodeProgram>& plans, int nprocs,
                         bool use_cache) {
  TempDir dir;
  Machine machine(nprocs, MachineCostModel::zero());
  SequenceRun out;
  machine.run([&](SpmdContext& ctx) {
    auto arrays = exec::create_sequence_arrays(
        ctx, std::span<const NodeProgram>(plans.data(), plans.size()),
        dir.path(), DiskModel::zero());
    std::set<std::string> outputs;
    for (const NodeProgram& plan : plans) {
      for (const auto& [name, pa] : plan.arrays) {
        if (pa.is_output) {
          outputs.insert(name);
        }
      }
    }
    for (auto& [name, arr] : arrays) {
      if (!outputs.contains(name)) {
        arr->initialize(ctx, gen_input, 1 << 16);
      }
      arr->laf().reset_stats();
    }
    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    ExecOptions options;
    options.use_cache = use_cache;
    options.max_iters = 1;
    runtime::SlabCacheStats local_cache;
    options.cache_stats = &local_cache;
    exec::execute_sequence(
        ctx, std::span<const NodeProgram>(plans.data(), plans.size()),
        bindings, options);
    static std::mutex mu;
    if (ctx.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.cache = local_cache;
    }
    for (auto& [name, arr] : arrays) {
      const io::IoStats s = arr->laf().stats();
      std::vector<double> g = arr->gather_global(ctx, 1 << 16);
      if (ctx.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        out.per_array[name] = s;
        out.globals[name] = std::move(g);
      }
    }
  });
  return out;
}

/// Exact-counter check: the sequence price (slab cache modelled, processor
/// 0) must equal rank 0's measured LAF stats and pool hits, for whichever
/// plan set — heuristic or searched — `plans` holds.
void expect_priced_equals_measured(const std::vector<NodeProgram>& plans,
                                   const SequenceRun& run,
                                   const std::string& label) {
  PriceOptions popts;
  popts.model_cache = true;
  const std::vector<PlanPrice> priced = price_sequence(
      std::span<const NodeProgram>(plans.data(), plans.size()), 0, popts);
  std::map<std::string, StepIoCost> total;
  double hits = 0.0;
  for (const PlanPrice& p : priced) {
    for (const auto& [name, cost] : p.arrays) {
      StepIoCost& t = total[name];
      t.read_requests += cost.read_requests;
      t.elements_read += cost.elements_read;
      t.write_requests += cost.write_requests;
      t.elements_written += cost.elements_written;
    }
    hits += p.cache_hits;
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(run.cache.hits), hits) << label;
  for (const auto& [name, cost] : total) {
    const io::IoStats& s = run.per_array.at(name);
    EXPECT_DOUBLE_EQ(static_cast<double>(s.read_requests),
                     cost.read_requests)
        << label << " " << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_read) / 8.0,
                     cost.elements_read)
        << label << " " << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.write_requests),
                     cost.write_requests)
        << label << " " << name;
    EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_written) / 8.0,
                     cost.elements_written)
        << label << " " << name;
  }
}

void expect_bit_identical(const SequenceRun& got, const SequenceRun& want,
                          const std::string& label) {
  ASSERT_EQ(got.globals.size(), want.globals.size()) << label;
  for (const auto& [name, w] : want.globals) {
    const auto it = got.globals.find(name);
    ASSERT_NE(it, got.globals.end()) << label << " " << name;
    ASSERT_EQ(it->second.size(), w.size()) << label << " " << name;
    for (std::size_t i = 0; i < w.size(); ++i) {
      ASSERT_EQ(it->second[i], w[i]) << label << " " << name << "[" << i
                                     << "]";
    }
  }
}

/// The full differential check for one seed. Every assertion carries the
/// generated program's description so a failing seed reproduces directly.
void check_seed(std::uint64_t seed) {
  const GeneratedProgram gp = progen::generate_program(seed);
  SCOPED_TRACE("seed " + std::to_string(seed) + ": " + gp.describe);

  CompileOptions base;
  base.memory_budget_elements = gp.memory_budget_elements;
  const std::vector<NodeProgram> heuristic =
      compile_sequence_source(gp.source, base);

  CompileOptions sopt = base;
  sopt.opt = OptMode::kSearch;
  const SearchResult searched = search_sequence_source(gp.source, sopt);

  // Both verify: the compile paths stamp plans only after the static
  // verifier passed, so a missing stamp means a verification gap.
  for (const NodeProgram& p : heuristic) {
    EXPECT_TRUE(p.verified);
  }
  for (const NodeProgram& p : searched.plans) {
    EXPECT_TRUE(p.verified);
  }

  // The search can never lose to its own candidate 0.
  const double heur_priced = priced_sequence_makespan_s(
      std::span<const NodeProgram>(heuristic.data(), heuristic.size()),
      base.disk, base.machine);
  const double search_priced = priced_sequence_makespan_s(
      std::span<const NodeProgram>(searched.plans.data(),
                                   searched.plans.size()),
      base.disk, base.machine);
  EXPECT_LE(search_priced, heur_priced + 1e-9);
  // And the report's numbers are the real ones, not summaries drifting
  // from the returned plans.
  EXPECT_NEAR(searched.report.heuristic_priced_s, heur_priced, 1e-9);
  EXPECT_NEAR(searched.report.chosen_priced_s, search_priced, 1e-9);

  // Three executions: heuristic cached, searched cached, and the uncached
  // heuristic run as the reference semantics. All bit-identical.
  const SequenceRun ref = run_sequence(heuristic, gp.nprocs, false);
  const SequenceRun heur_run = run_sequence(heuristic, gp.nprocs, true);
  const SequenceRun search_run =
      run_sequence(searched.plans, gp.nprocs, true);
  expect_bit_identical(heur_run, ref, "heuristic cached vs reference");
  expect_bit_identical(search_run, ref, "searched vs reference");

  // Priced == measured on both plan sets: the objective the search
  // minimized is the executor's reality, not a proxy.
  expect_priced_equals_measured(heuristic, heur_run, "heuristic");
  expect_priced_equals_measured(searched.plans, search_run, "searched");
}

// ------------------------------------------------- differential harness

TEST(SearchDifferential, HundredSeededPrograms) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    check_seed(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(SearchDifferential, SoakTwoHundredPrograms) {
  // Nightly-scale soak on a disjoint seed range; OOCC_SEARCH_SOAK=1 (the
  // search-soak CI job) unlocks it.
  const char* env = std::getenv("OOCC_SEARCH_SOAK");
  if (env == nullptr || std::string(env) == "0") {
    GTEST_SKIP() << "set OOCC_SEARCH_SOAK=1 to run the 200-program soak";
  }
  for (std::uint64_t seed = 1000; seed < 1200; ++seed) {
    check_seed(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// ------------------------------------------------------------ determinism

TEST(SearchDeterminism, SameSeedSameProgramSamePlan) {
  for (const std::uint64_t seed : {7ULL, 42ULL, 99ULL}) {
    const GeneratedProgram a = progen::generate_program(seed);
    const GeneratedProgram b = progen::generate_program(seed);
    EXPECT_EQ(a.source, b.source) << "seed " << seed;
    EXPECT_EQ(a.describe, b.describe) << "seed " << seed;
    EXPECT_EQ(a.memory_budget_elements, b.memory_budget_elements);

    CompileOptions options;
    options.memory_budget_elements = a.memory_budget_elements;
    options.opt = OptMode::kSearch;
    const SearchResult first = search_sequence_source(a.source, options);
    const SearchResult second = search_sequence_source(b.source, options);
    EXPECT_EQ(first.report.chosen, second.report.chosen) << "seed " << seed;
    EXPECT_EQ(first.report.enumerated, second.report.enumerated);
    EXPECT_DOUBLE_EQ(first.report.chosen_priced_s,
                     second.report.chosen_priced_s);
    ASSERT_EQ(first.plans.size(), second.plans.size()) << "seed " << seed;
    for (std::size_t i = 0; i < first.plans.size(); ++i) {
      // The emitted step programs must match structurally, not just in
      // price: step_program_text renders loops, capacities and the tree.
      EXPECT_EQ(step_program_text(first.plans[i]),
                step_program_text(second.plans[i]))
          << "seed " << seed << " plan " << i;
    }
  }
}

TEST(SearchDeterminism, DistinctSeedsCoverEveryShape) {
  // The generator must actually exercise all four program shapes within
  // the default differential range, or the harness silently narrows.
  bool chain = false;
  bool gaxpy = false;
  bool stencil = false;
  bool mixed = false;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const GeneratedProgram gp = progen::generate_program(seed);
    if (gp.has_stencil) {
      stencil = true;
    } else if (gp.has_gaxpy) {
      (gp.statements > 1 ? mixed : gaxpy) = true;
    } else {
      chain = true;
    }
  }
  EXPECT_TRUE(chain);
  EXPECT_TRUE(gaxpy);
  EXPECT_TRUE(stencil);
  EXPECT_TRUE(mixed);
}

// ------------------------------------------- search space and diagnostics

TEST(SearchSpace, EnumeratesFusionPartitionsOfAChain) {
  // A 3-statement chain has four contiguous partitions; each must appear
  // in the candidate log (crossed with share/prefetch knobs).
  const std::string src =
      "parameter (n=24, p=4)\n"
      "real x(n,n), y(n,n), z(n,n), w(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y, z, w\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = x(1:n,k)*2 + 1\n"
      "end forall\n"
      "forall (k=1:n)\n"
      "  z(1:n,k) = y(1:n,k)*x(1:n,k)\n"
      "end forall\n"
      "forall (k=1:n)\n"
      "  w(1:n,k) = z(1:n,k) + y(1:n,k)*x(1:n,k)\n"
      "end forall\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 4096;
  options.opt = OptMode::kSearch;
  options.search_passes = 1;
  const SearchResult result = search_sequence_source(src, options);
  std::set<std::string> partitions;
  for (const SearchCandidate& c : result.report.candidates) {
    const std::size_t brace = c.describe.find('}');
    if (c.describe.rfind("fuse {", 0) == 0 && brace != std::string::npos) {
      partitions.insert(c.describe.substr(0, brace + 1));
    }
  }
  EXPECT_TRUE(partitions.contains("fuse {1+2+3}"));
  EXPECT_TRUE(partitions.contains("fuse {1,2+3}"));
  EXPECT_TRUE(partitions.contains("fuse {1+2,3}"));
  EXPECT_TRUE(partitions.contains("fuse {1,2,3}"));
  // The searched result is still a verified plan set that prices no worse
  // than the heuristic (which fuses all three here).
  EXPECT_LE(result.report.chosen_priced_s,
            result.report.heuristic_priced_s + 1e-9);
}

TEST(SearchSpace, GaxpyBarrierEmitsNotSearchableDiagnostic) {
  // Elementwise statements on both sides of a GAXPY nest: the search must
  // say — structurally, not by omission — that it does not fuse across
  // the reduction barrier.
  const std::string src =
      "parameter (n=16, p=2)\n"
      "real x(n,n), u(n,n), v(n,n), a(n,n), b(n,n), c(n,n), temp(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, u, v, a, c, temp\n"
      "!hpf$ align (:,*) with d :: b\n"
      "forall (k=1:n)\n"
      "  u(1:n,k) = x(1:n,k)*2 + 1\n"
      "end forall\n"
      "do j=1, n\n"
      "  forall (k=1:n)\n"
      "    temp(1:n,k) = b(k,j)*a(1:n,k)\n"
      "  end forall\n"
      "  c(1:n,j) = SUM(temp,2)\n"
      "end do\n"
      "forall (k=1:n)\n"
      "  v(1:n,k) = u(1:n,k) + x(1:n,k)*3\n"
      "end forall\n"
      "end\n";
  CompileOptions options;
  options.memory_budget_elements = 1 << 12;
  options.opt = OptMode::kSearch;
  const SearchResult result = search_sequence_source(src, options);
  bool barrier_diag = false;
  for (const std::string& d : result.report.not_searchable) {
    EXPECT_EQ(d.rfind("not searchable: ", 0), 0u) << d;
    if (d.find("GAXPY reduction nest") != std::string::npos) {
      barrier_diag = true;
    }
  }
  EXPECT_TRUE(barrier_diag);
  EXPECT_EQ(result.report.segments, 3);
}

TEST(SearchSpace, StencilPrefetchEmitsNotSearchableDiagnostic) {
  CompileOptions options;
  options.memory_budget_elements = 4096;
  options.opt = OptMode::kSearch;
  const SearchResult result =
      search_sequence_source(hpf::stencil_source(24, 3), options);
  bool halo_diag = false;
  for (const std::string& d : result.report.not_searchable) {
    if (d.find("halo") != std::string::npos &&
        d.find("prefetch") != std::string::npos) {
      halo_diag = true;
    }
  }
  EXPECT_TRUE(halo_diag);
}

// ------------------------- verifier reachability on search-produced plans

/// The verify_test mutation catalogue replayed against plans the *search*
/// emitted: every OOCC-V0xx code must stay reachable from searched plans,
/// proving the searcher cannot move plans out of the verifier's domain.

NodeProgram searched_elementwise(int nprocs, std::int64_t budget = 4096) {
  CompileOptions options;
  options.memory_budget_elements = budget;
  options.opt = OptMode::kSearch;
  SearchResult r = search_sequence_source(
      hpf::elementwise_source(10, 20, nprocs, 2), options);
  EXPECT_EQ(r.plans.size(), 1u);
  return std::move(r.plans.front());
}

NodeProgram searched_stencil(int nprocs, std::int64_t budget) {
  CompileOptions options;
  options.memory_budget_elements = budget;
  options.opt = OptMode::kSearch;
  SearchResult r =
      search_sequence_source(hpf::stencil_source(24, nprocs), options);
  EXPECT_EQ(r.plans.size(), 1u);
  return std::move(r.plans.front());
}

Step* find_step(std::vector<Step>& steps, StepKind kind) {
  for (Step& s : steps) {
    if (s.kind == kind) {
      return &s;
    }
    if (Step* hit = find_step(s.body, kind)) {
      return hit;
    }
  }
  return nullptr;
}

Step* require_step(NodeProgram& plan, StepKind kind) {
  Step* step = find_step(plan.steps, kind);
  EXPECT_NE(step, nullptr) << "plan has no " << step_kind_name(kind);
  return step;
}

bool remove_step(std::vector<Step>& steps, StepKind kind) {
  for (auto it = steps.begin(); it != steps.end(); ++it) {
    if (it->kind == kind) {
      steps.erase(it);
      return true;
    }
    if (remove_step(it->body, kind)) {
      return true;
    }
  }
  return false;
}

::testing::AssertionResult fires(const NodeProgram& plan,
                                 const std::string& code) {
  const VerifyReport report = verify_plan(plan);
  for (const VerifyDiagnostic& d : report.diagnostics) {
    if (d.code == code) {
      return ::testing::AssertionSuccess();
    }
  }
  return ::testing::AssertionFailure()
         << "expected " << code << ", got:\n"
         << report.to_string();
}

TEST(SearchVerifierReachability, StructuralCodes) {
  {
    NodeProgram plan = searched_elementwise(1);
    require_step(plan, StepKind::kForEachSlab)->loop = "bogus";
    EXPECT_TRUE(fires(plan, "OOCC-V001"));
  }
  {
    NodeProgram plan = searched_elementwise(1);
    require_step(plan, StepKind::kReadSlab)->array = "nosuch";
    EXPECT_TRUE(fires(plan, "OOCC-V002"));
  }
  {
    NodeProgram plan = searched_elementwise(1);
    require_step(plan, StepKind::kComputeElementwise)->stmt = 99;
    EXPECT_TRUE(fires(plan, "OOCC-V003"));
  }
  {
    NodeProgram plan = searched_elementwise(1);
    Step hoisted = *require_step(plan, StepKind::kReadSlab);
    plan.steps.push_back(hoisted);
    EXPECT_TRUE(fires(plan, "OOCC-V004"));
  }
  {
    NodeProgram plan = searched_elementwise(1);
    ASSERT_TRUE(remove_step(plan.steps, StepKind::kComputeElementwise));
    EXPECT_TRUE(fires(plan, "OOCC-V005"));
  }
}

TEST(SearchVerifierReachability, RaceAndHaloCodes) {
  {
    NodeProgram plan = searched_elementwise(3);
    plan.arrays.at("y").dist = hpf::ArrayDistribution(
        10, 20, hpf::DistAxis::kNone, hpf::DistKind::kCollapsed,
        plan.nprocs);
    EXPECT_TRUE(fires(plan, "OOCC-V010"));
  }
  {
    NodeProgram plan = searched_stencil(3, 4096);
    ASSERT_TRUE(remove_step(plan.steps, StepKind::kBarrier));
    EXPECT_TRUE(fires(plan, "OOCC-V011"));
  }
  {
    NodeProgram plan = searched_stencil(3, 4096);
    require_step(plan, StepKind::kExchangeHalo)->halo = 0;
    EXPECT_TRUE(fires(plan, "OOCC-V012"));
  }
}

TEST(SearchVerifierReachability, BoundsAndCoverageCodes) {
  {
    NodeProgram plan = searched_elementwise(3);
    plan.arrays.at("x").dist = hpf::column_block(10, 10, 3);
    EXPECT_TRUE(fires(plan, "OOCC-V020"));
  }
  {
    // A searched fused chain: shrinking the second output's distribution
    // makes its WriteSlab run past the local extent.
    const std::string src =
        "parameter (n=20, p=3)\n"
        "real x(n,n), y(n,n), z(n,n)\n"
        "!hpf$ processors Pr(p)\n"
        "!hpf$ template d(n)\n"
        "!hpf$ distribute d(block) onto Pr\n"
        "!hpf$ align (*,:) with d :: x, y, z\n"
        "forall (k=1:n)\n"
        "  y(1:n,k) = x(1:n,k)*2 + 1\n"
        "end forall\n"
        "forall (k=1:n)\n"
        "  z(1:n,k) = y(1:n,k) + k\n"
        "end forall\n"
        "end\n";
    CompileOptions options;
    options.memory_budget_elements = 4096;
    options.opt = OptMode::kSearch;
    SearchResult r = search_sequence_source(src, options);
    ASSERT_FALSE(r.plans.empty());
    NodeProgram& plan = r.plans.front();
    ASSERT_GT(plan.statements.size(), 1u) << "searched chain did not fuse";
    plan.arrays.at("z").dist = hpf::column_block(20, 10, 3);
    EXPECT_TRUE(fires(plan, "OOCC-V021"));
  }
  {
    NodeProgram plan = searched_elementwise(3);
    ASSERT_TRUE(remove_step(plan.steps, StepKind::kWriteSlab));
    EXPECT_TRUE(fires(plan, "OOCC-V022"));
  }
  {
    NodeProgram plan = searched_elementwise(3);
    Step* sweep = require_step(plan, StepKind::kForEachSlab);
    Step* write = find_step(sweep->body, StepKind::kWriteSlab);
    ASSERT_NE(write, nullptr);
    sweep->body.push_back(*write);
    EXPECT_TRUE(fires(plan, "OOCC-V023"));
  }
}

TEST(SearchVerifierReachability, BudgetScheduleAndReuseCodes) {
  {
    NodeProgram plan = searched_elementwise(1, 3 * 10);
    require_step(plan, StepKind::kReadSlab)->halo = 8;
    EXPECT_TRUE(fires(plan, "OOCC-V030"));
  }
  {
    NodeProgram plan = searched_elementwise(3, 7 * 10);
    Step barrier;
    barrier.kind = StepKind::kBarrier;
    require_step(plan, StepKind::kForEachSlab)->body.push_back(barrier);
    EXPECT_TRUE(fires(plan, "OOCC-V040"));
  }
  {
    NodeProgram plan = searched_elementwise(1);
    require_step(plan, StepKind::kReadSlab)->reuse_distance = 1234.0;
    EXPECT_TRUE(fires(plan, "OOCC-V041"));
  }
}

// ---------------------------------------------------------- plumbing

TEST(SearchPlumbing, CompileSequenceDispatchesOnOptMode) {
  // compile_sequence with opt=kSearch must return the searched plans (the
  // public entry the CLI, serve jobs and embedding code all use).
  const GeneratedProgram gp = progen::generate_program(3);
  CompileOptions options;
  options.memory_budget_elements = gp.memory_budget_elements;
  options.opt = OptMode::kSearch;
  const std::vector<NodeProgram> via_dispatch =
      compile_sequence_source(gp.source, options);
  const SearchResult direct = search_sequence_source(gp.source, options);
  ASSERT_EQ(via_dispatch.size(), direct.plans.size());
  for (std::size_t i = 0; i < via_dispatch.size(); ++i) {
    EXPECT_EQ(step_program_text(via_dispatch[i]),
              step_program_text(direct.plans[i]));
    EXPECT_TRUE(via_dispatch[i].verified);
  }
}

TEST(SearchPlumbing, ReportTextIsDeterministic) {
  CompileOptions options;
  options.memory_budget_elements = 4096;
  options.opt = OptMode::kSearch;
  const SearchResult a =
      search_sequence_source(hpf::gaxpy_source(32, 4), options);
  const SearchResult b =
      search_sequence_source(hpf::gaxpy_source(32, 4), options);
  EXPECT_EQ(search_report_text(a.report), search_report_text(b.report));
  EXPECT_NE(search_report_text(a.report).find("heuristic baseline"),
            std::string::npos);
}

}  // namespace
}  // namespace oocc::compiler
