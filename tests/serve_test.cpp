// Tests for the compile server: canonical hashing, single-flight plan
// caching, admission fairness (round-robin, no head-of-line blocking,
// anti-starvation barrier), protocol robustness (malformed requests,
// mid-job disconnects), request-scoped environment capture, and the
// bit-identity of cached executions against fresh ones and against the
// serial oocc_compile driver.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "oocc/hpf/parser.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/io/file_backend.hpp"
#include "oocc/serve/admission.hpp"
#include "oocc/serve/hash.hpp"
#include "oocc/serve/job.hpp"
#include "oocc/serve/json.hpp"
#include "oocc/serve/plan_cache.hpp"
#include "oocc/serve/server.hpp"

#ifndef OOCC_COMPILE_BIN
#define OOCC_COMPILE_BIN ""
#endif

namespace {

using namespace oocc;
using namespace oocc::serve;
using namespace std::chrono_literals;

hpf::BoundProgram analyze_source(const std::string& source) {
  return hpf::analyze(hpf::parse(source));
}

// ---------------------------------------------------------------------------
// Canonical hashing / PlanKey

TEST(ServeHash, InsensitiveToFormattingSensitiveToMeaning) {
  const std::string base = hpf::stencil_source(32, 2);
  // Reformat: extra blank lines and a comment must not change the hash.
  const std::string reformatted = "! a comment\n\n" + base + "\n\n";
  EXPECT_EQ(canonical_program_hash(analyze_source(base)),
            canonical_program_hash(analyze_source(reformatted)));

  // Different N, P, or program: different hash.
  EXPECT_NE(canonical_program_hash(analyze_source(base)),
            canonical_program_hash(analyze_source(hpf::stencil_source(64, 2))));
  EXPECT_NE(canonical_program_hash(analyze_source(base)),
            canonical_program_hash(analyze_source(hpf::stencil_source(32, 4))));
  EXPECT_NE(canonical_program_hash(analyze_source(base)),
            canonical_program_hash(analyze_source(hpf::gaxpy_source(32, 2))));
}

TEST(ServeHash, PlanKeyCapturesKnobs) {
  const hpf::BoundProgram bound = analyze_source(hpf::gaxpy_source(32, 2));
  compiler::CompileOptions o;
  o.memory_budget_elements = default_memory_budget(bound);
  const PlanKey base = make_plan_key(bound, o);
  EXPECT_EQ(base, make_plan_key(bound, o));

  compiler::CompileOptions o2 = o;
  o2.enable_statement_fusion = false;
  EXPECT_NE(base, make_plan_key(bound, o2));
  compiler::CompileOptions o3 = o;
  o3.prefetch = compiler::PrefetchMode::kOn;
  EXPECT_NE(base, make_plan_key(bound, o3));
  compiler::CompileOptions o4 = o;
  o4.memory_budget_elements += 1;
  EXPECT_NE(base, make_plan_key(bound, o4));

  // The cost models feed lowering decisions (kAuto prefetch pricing), so a
  // recalibrated disk or machine must land on a different key.
  compiler::CompileOptions o5 = o;
  o5.disk.request_overhead_s *= 2.0;
  EXPECT_NE(base, make_plan_key(bound, o5));
  compiler::CompileOptions o6 = o;
  o6.machine = sim::MachineCostModel::zero();
  EXPECT_NE(base, make_plan_key(bound, o6));

  EXPECT_NE(base.to_string().find("p=2"), std::string::npos);
}

TEST(ServeHash, PlanKeyCapturesOptimizerMode) {
  // Searched and heuristic plans can differ in every knob the key cannot
  // see (slab sizes, fusion grouping, prefetch), so they must land on
  // different cache entries — and a different search depth too.
  const hpf::BoundProgram bound = analyze_source(hpf::gaxpy_source(32, 2));
  compiler::CompileOptions o;
  o.memory_budget_elements = default_memory_budget(bound);
  const PlanKey heuristic = make_plan_key(bound, o);

  compiler::CompileOptions s = o;
  s.opt = compiler::OptMode::kSearch;
  const PlanKey searched = make_plan_key(bound, s);
  EXPECT_NE(heuristic, searched);
  EXPECT_NE(heuristic.digest(), searched.digest());

  compiler::CompileOptions deeper = s;
  deeper.search_passes = s.search_passes + 3;
  EXPECT_NE(searched, make_plan_key(bound, deeper));

  // Under kHeuristic the search_passes knob is dead: folding it into the
  // key would split the cache across identical plans.
  compiler::CompileOptions h2 = o;
  h2.search_passes = o.search_passes + 3;
  EXPECT_EQ(heuristic, make_plan_key(bound, h2));

  // The rendered key names the optimizer, and passes only when searching.
  EXPECT_NE(searched.to_string().find("opt=search"), std::string::npos);
  EXPECT_NE(searched.to_string().find("passes="), std::string::npos);
  EXPECT_NE(heuristic.to_string().find("opt=heuristic"), std::string::npos);
  EXPECT_EQ(heuristic.to_string().find("passes="), std::string::npos);
}

TEST(ServeHash, DefaultMemoryBudgetMatchesCliRule) {
  const hpf::BoundProgram bound = analyze_source(hpf::gaxpy_source(64, 4));
  std::int64_t largest = 0;
  for (const auto& [name, info] : bound.arrays) {
    largest = std::max(largest, info.dist.local_elements(0));
  }
  const std::int64_t want =
      largest / 4 + 4 * (largest > 0 ? bound.arrays.begin()->second.rows : 1);
  EXPECT_EQ(default_memory_budget(bound), want);
}

// ---------------------------------------------------------------------------
// JSON

TEST(ServeJson, RoundTripsRequests) {
  const std::string line =
      "{\"op\":\"run\",\"tenant\":\"t0\",\"n\":64,\"tol\":0.5,"
      "\"program\":\"line1\\nline2\",\"fuse\":false}";
  const Json v = Json::parse(line);
  EXPECT_EQ(v.get_string("op", ""), "run");
  EXPECT_EQ(v.get_int("n", 0), 64);
  EXPECT_DOUBLE_EQ(v.get_double("tol", 0.0), 0.5);
  EXPECT_EQ(v.get_string("program", ""), "line1\nline2");
  EXPECT_FALSE(v.get_bool("fuse", true));

  // dump() must stay single-line even with embedded newlines.
  const std::string dumped = v.dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);
  const Json again = Json::parse(dumped);
  EXPECT_EQ(again.get_string("program", ""), "line1\nline2");
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{\"a\":"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("{'a':1}"), Error);
  EXPECT_THROW(Json::parse(""), Error);
}

// ---------------------------------------------------------------------------
// PlanCache

TEST(PlanCache, ConcurrentRequestsCompileOnce) {
  PlanCache cache;
  const hpf::BoundProgram bound = analyze_source(hpf::stencil_source(32, 2));
  compiler::CompileOptions o;
  o.memory_budget_elements = default_memory_budget(bound);
  const PlanKey key = make_plan_key(bound, o);

  std::atomic<int> compiles{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const CachedPlan>> results(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] = cache.get_or_compile(key, [&] {
        compiles.fetch_add(1);
        std::this_thread::sleep_for(20ms);  // widen the race window
        return compiler::compile_sequence(bound, o);
      });
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  EXPECT_EQ(compiles.load(), 1) << "single-flight violated: duplicate compile";
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get()) << "joiners must share the entry";
    ASSERT_FALSE(r->plans.empty());
    EXPECT_TRUE(r->plans.front().verified)
        << "cache must store verified plans (hits skip re-verification)";
  }
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.inflight_waits, kThreads - 1u);
}

TEST(PlanCache, FailurePropagatesAndRetries) {
  PlanCache cache;
  PlanKey key;
  key.program_hash = 0xdead;
  int calls = 0;
  const auto failing = [&]() -> std::vector<compiler::NodeProgram> {
    ++calls;
    OOCC_THROW(ErrorCode::kCompileError, "boom");
  };
  EXPECT_THROW(cache.get_or_compile(key, failing), Error);
  // The key was forgotten: a later request retries instead of replaying the
  // stale exception.
  EXPECT_THROW(cache.get_or_compile(key, failing), Error);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().failures, 2u);
  EXPECT_EQ(cache.lookup(key), nullptr);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(Admission, OversizedJobIsRejectedImmediately) {
  AdmissionController ac(1000);
  try {
    ac.acquire("t", 1001);
    FAIL() << "expected kResourceExhausted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
}

TEST(Admission, NeverOversubscribesAndTracksPeak) {
  AdmissionController ac(1000);
  auto g1 = ac.acquire("a", 600);
  auto g2 = ac.acquire("b", 300);
  EXPECT_EQ(ac.stats().in_use_elements, 900);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto g3 = ac.acquire("c", 300);  // 900+300 > 1000: must wait
    admitted.store(true);
    g3.release();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(admitted.load()) << "budget was oversubscribed";
  EXPECT_EQ(ac.stats().waiting_jobs, 1);
  g2.release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  g1.release();
  const auto stats = ac.stats();
  EXPECT_EQ(stats.in_use_elements, 0);
  EXPECT_EQ(stats.peak_in_use_elements, 900);
  EXPECT_LE(stats.peak_in_use_elements, stats.total_elements);
}

TEST(Admission, SmallJobFlowsPastQueuedGiant) {
  // A big-budget job waiting in the queue must not starve another tenant's
  // small job that currently fits (no cross-tenant head-of-line blocking).
  AdmissionController ac(1000);
  auto big_holder = ac.acquire("a", 800);

  std::atomic<bool> giant_admitted{false};
  std::thread giant([&] {
    auto g = ac.acquire("a2", 800);  // cannot fit until big_holder releases
    giant_admitted.store(true);
    g.release();
  });
  // Wait until the giant is queued.
  while (ac.stats().waiting_jobs == 0) {
    std::this_thread::sleep_for(1ms);
  }

  // The small job fits (800+100 <= 1000) and must be admitted promptly even
  // though the giant queued first.
  const auto t0 = std::chrono::steady_clock::now();
  auto small = ac.acquire("b", 100);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited, 1.0);
  EXPECT_FALSE(giant_admitted.load());
  small.release();
  big_holder.release();
  giant.join();
  EXPECT_TRUE(giant_admitted.load());
  EXPECT_GE(ac.stats().tenants.at("a2").waits, 1u);
}

TEST(Admission, StarvedGiantBecomesBarrier) {
  // After kStarvationLimit pass-overs, the queued giant blocks younger
  // admissions, so a steady stream of small jobs cannot starve it forever.
  AdmissionController ac(1000);
  auto holder = ac.acquire("s", 600);

  std::atomic<int> order{0};
  std::atomic<int> giant_order{-1};
  std::thread giant([&] {
    // 950 (not 900): the late 100-element job below must not co-fit with
    // the giant in one grant pass, or the two wakeups race to record order.
    auto g = ac.acquire("big", 950);
    giant_order.store(order.fetch_add(1));
    g.release();
  });
  while (ac.stats().waiting_jobs == 0) {
    std::this_thread::sleep_for(1ms);
  }

  // Each small admission passes the giant over once.
  for (int i = 0; i < AdmissionController::kStarvationLimit; ++i) {
    auto g = ac.acquire("small", 100);
    g.release();
  }

  // The barrier is now armed: a younger small job must queue behind the
  // giant even though 100 elements would fit.
  std::atomic<int> late_order{-1};
  std::thread late([&] {
    auto g = ac.acquire("late", 100);
    late_order.store(order.fetch_add(1));
    g.release();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(late_order.load(), -1) << "barrier ignored: younger job admitted";
  EXPECT_EQ(ac.stats().waiting_jobs, 2);

  holder.release();  // 0 in use -> giant (the barrier) admitted first
  giant.join();
  late.join();
  EXPECT_LT(giant_order.load(), late_order.load())
      << "giant must be admitted before jobs that queued after the barrier";
}

// ---------------------------------------------------------------------------
// Server protocol

TEST(Server, MalformedRequestsGetErrorResponsesAndServerSurvives) {
  Server server(ServerOptions{});
  const Json bad = server.handle_line("{\"op\":");
  EXPECT_FALSE(bad.get_bool("ok", true));
  EXPECT_EQ(bad.get_string("code", ""), "ParseError");

  const Json bad2 = server.handle_line("{\"op\":\"run\",\"id\":\"x\"}");
  EXPECT_FALSE(bad2.get_bool("ok", true));
  EXPECT_EQ(bad2.get_string("id", ""), "x");

  const Json bad3 = server.handle_line(
      "{\"op\":\"compile\",\"program\":\"this is not hpf\"}");
  EXPECT_FALSE(bad3.get_bool("ok", true));

  // The server still serves valid requests afterwards.
  const Json good = server.handle_line(
      "{\"op\":\"compile\",\"builtin\":\"stencil\",\"n\":32,\"p\":2}");
  EXPECT_TRUE(good.get_bool("ok", false)) << good.dump();
  EXPECT_EQ(server.cache().stats().misses, 1u);
}

TEST(Server, HostileTenantNamesStayInsideWorkRoot) {
  // A tenant of ".." must not resolve to the parent of the work root: job
  // directories are created — and recursively removed — under tenant
  // roots, so an escape would let a request delete siblings of the root.
  io::TempDir outer("oocc-serve-tenant");
  const std::filesystem::path root = outer.file("work");
  const std::filesystem::path sentinel = outer.file("job-0");
  std::filesystem::create_directories(sentinel);
  ServerOptions opts;
  opts.work_root = root;
  Server server(opts);
  const Json res = server.handle_line(
      "{\"op\":\"run\",\"tenant\":\"..\",\"builtin\":\"stencil\","
      "\"n\":32,\"p\":2,\"iters\":2,\"id\":\"evil\"}");
  EXPECT_TRUE(res.get_bool("ok", false)) << res.dump();
  EXPECT_TRUE(std::filesystem::exists(sentinel))
      << "a '..' tenant escaped the work root and deleted a sibling dir";
  EXPECT_TRUE(std::filesystem::exists(root / "_."))
      << "'..' should sanitize to a plain component under the work root";
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(outer.path())) {
    ++entries;
  }
  EXPECT_EQ(entries, 2u) << "unexpected residue next to the work root";
}

TEST(Server, CompileOpsSkipAdmissionButRunOpsAreBounded) {
  // Budget far below the job footprint: compiles must still succeed (they
  // execute nothing); run ops must be rejected as never-admittable.
  ServerOptions opts;
  opts.total_budget_elements = 16;
  Server server(opts);
  const Json ok = server.handle_line(
      "{\"op\":\"compile\",\"builtin\":\"stencil\",\"n\":32,\"p\":2}");
  EXPECT_TRUE(ok.get_bool("ok", false)) << ok.dump();

  const Json rejected = server.handle_line(
      "{\"op\":\"run\",\"builtin\":\"stencil\",\"n\":32,\"p\":2}");
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(rejected.get_string("code", ""), "ResourceExhausted");
}

TEST(Server, StdioLoopServesAndShutsDown) {
  Server server(ServerOptions{});
  std::istringstream in(
      "{\"op\":\"compile\",\"builtin\":\"stencil\",\"n\":32,\"p\":2,"
      "\"id\":\"a\"}\n"
      "{\"op\":\"compile\",\"builtin\":\"stencil\",\"n\":32,\"p\":2,"
      "\"id\":\"b\"}\n"
      "{\"op\":\"stats\",\"id\":\"s\"}\n"
      "{\"op\":\"shutdown\",\"id\":\"q\"}\n"
      "{\"op\":\"compile\",\"builtin\":\"stencil\",\"n\":32,\"p\":2,"
      "\"id\":\"after\"}\n");
  std::ostringstream out;
  serve_stdio(server, in, out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<Json> responses;
  while (std::getline(lines, line)) {
    responses.push_back(Json::parse(line));
  }
  ASSERT_EQ(responses.size(), 4u) << "no response after shutdown";
  EXPECT_FALSE(responses[0].get_bool("cache_hit", true));
  EXPECT_TRUE(responses[1].get_bool("cache_hit", false));
  EXPECT_TRUE(responses[2].get_bool("ok", false));
  EXPECT_TRUE(responses[3].get_bool("shutdown", false));
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(Server, EnvironmentIsCapturedAtRequestScope) {
  // The request must carry a snapshot of the process-global knobs taken at
  // parse time; flipping the environment afterwards must not affect it.
  Server server(ServerOptions{});
  ::setenv("OOCC_ASYNC", "0", 1);
  ::setenv("OOCC_NO_VERIFY", "1", 1);
  ::setenv("OOCC_IO_THREADS", "3", 1);
  const JobRequest req = server.parse_request(
      "{\"op\":\"run\",\"builtin\":\"stencil\",\"n\":32,\"p\":2}");
  ::unsetenv("OOCC_ASYNC");
  ::unsetenv("OOCC_NO_VERIFY");
  ::unsetenv("OOCC_IO_THREADS");

  EXPECT_FALSE(req.profile.machine.async);
  EXPECT_EQ(req.profile.machine.io_threads, 3);
  EXPECT_FALSE(req.profile.exec.verify);
  EXPECT_FALSE(req.profile.exec.async);

  // And the snapshot of a fresh request reflects the restored environment.
  const JobRequest fresh = server.parse_request(
      "{\"op\":\"run\",\"builtin\":\"stencil\",\"n\":32,\"p\":2}");
  EXPECT_TRUE(fresh.profile.machine.async);
  EXPECT_TRUE(fresh.profile.exec.verify);
}

// ---------------------------------------------------------------------------
// Bit-identity

class ServeBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(ServeBitIdentity, CachedRunMatchesFreshRunStencil) {
  const int p = GetParam();
  Server server(ServerOptions{});
  // Explicit budget: the default quarter-of-local rule shrinks with P and
  // underflows the stencil working set at P=3/4 for this small N.
  const std::string req =
      "{\"op\":\"run\",\"builtin\":\"stencil\",\"n\":32,\"p\":" +
      std::to_string(p) + ",\"iters\":3,\"memory\":512}";

  const Json fresh = server.handle_line(req);
  ASSERT_TRUE(fresh.get_bool("ok", false)) << fresh.dump();
  EXPECT_FALSE(fresh.get_bool("cache_hit", true));
  const std::string fresh_hash = fresh.get_string("result_hash", "");
  ASSERT_FALSE(fresh_hash.empty());

  const Json cached = server.handle_line(req);
  ASSERT_TRUE(cached.get_bool("ok", false)) << cached.dump();
  EXPECT_TRUE(cached.get_bool("cache_hit", false));
  EXPECT_EQ(cached.get_string("result_hash", ""), fresh_hash)
      << "cached execution diverged from the fresh one at P=" << p;

  // A second, completely independent server (fresh cache, fresh LAF tree)
  // must land on the same bytes.
  Server other(ServerOptions{});
  const Json independent = other.handle_line(req);
  ASSERT_TRUE(independent.get_bool("ok", false)) << independent.dump();
  EXPECT_EQ(independent.get_string("result_hash", ""), fresh_hash);
}

TEST_P(ServeBitIdentity, CachedRunMatchesFreshRunGaxpy) {
  const int p = GetParam();
  Server server(ServerOptions{});
  const std::string req =
      "{\"op\":\"run\",\"builtin\":\"gaxpy\",\"n\":24,\"p\":" +
      std::to_string(p) + "}";
  const Json fresh = server.handle_line(req);
  ASSERT_TRUE(fresh.get_bool("ok", false)) << fresh.dump();
  const Json cached = server.handle_line(req);
  ASSERT_TRUE(cached.get_bool("ok", false)) << cached.dump();
  EXPECT_TRUE(cached.get_bool("cache_hit", false));
  EXPECT_EQ(cached.get_string("result_hash", ""),
            fresh.get_string("result_hash", ""));
}

INSTANTIATE_TEST_SUITE_P(Procs, ServeBitIdentity, ::testing::Values(1, 3, 4));

TEST(ServeBitIdentity, MatchesSerialOoccCompileDriver) {
  if (std::string(OOCC_COMPILE_BIN).empty()) {
    GTEST_SKIP() << "oocc_compile was not built";
  }
  Server server(ServerOptions{});
  const Json res = server.handle_line(
      "{\"op\":\"run\",\"builtin\":\"stencil\",\"n\":32,\"p\":2,"
      "\"iters\":4}");
  ASSERT_TRUE(res.get_bool("ok", false)) << res.dump();
  const std::string server_hash = res.get_string("result_hash", "");

  io::TempDir dir("oocc-serve-test");
  const auto out_path = dir.file("out.txt");
  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN +
                          "\" --stencil=32,2 --run --iters 4 --result-hash "
                          "> \"" +
                          out_path.string() + "\" 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(out_path);
  std::string line;
  std::string cli_hash;
  while (std::getline(in, line)) {
    const std::string prefix = "result hash: ";
    if (line.rfind(prefix, 0) == 0) {
      cli_hash = line.substr(prefix.size());
    }
  }
  ASSERT_FALSE(cli_hash.empty());
  EXPECT_EQ(server_hash, cli_hash)
      << "server execution diverged from the serial driver";
}

// ---------------------------------------------------------------------------
// Socket front end

namespace sock {

int connect_to(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

std::string recv_line(int fd) {
  std::string buffer;
  char c;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') {
      return buffer;
    }
    buffer.push_back(c);
  }
  return buffer;
}

}  // namespace sock

TEST(ServeSocket, SurvivesMidJobDisconnect) {
  io::TempDir dir("oocc-serve-sock");
  const std::string path = dir.file("serve.sock").string();
  Server server(ServerOptions{});
  std::thread daemon([&] { serve_socket(server, path, 2); });
  // Wait for the listener; generous bound, a parallel ctest run can starve
  // the daemon thread for a while.
  int probe = -1;
  for (int i = 0; i < 1000 && probe < 0; ++i) {
    std::this_thread::sleep_for(10ms);
    probe = sock::connect_to(path);
  }
  ASSERT_GE(probe, 0) << "daemon did not come up";

  // Fire a run request and disconnect immediately: the job must complete
  // (or fail) server-side without crashing anything.
  sock::send_line(probe,
                  "{\"op\":\"run\",\"builtin\":\"stencil\",\"n\":32,"
                  "\"p\":2,\"iters\":4,\"id\":\"orphan\"}");
  ::close(probe);

  // A second connection still gets served.
  const int fd = sock::connect_to(path);
  ASSERT_GE(fd, 0);
  sock::send_line(fd,
                  "{\"op\":\"run\",\"builtin\":\"stencil\",\"n\":32,"
                  "\"p\":2,\"iters\":4,\"id\":\"ok\"}");
  const Json res = Json::parse(sock::recv_line(fd));
  EXPECT_TRUE(res.get_bool("ok", false)) << res.dump();
  EXPECT_EQ(res.get_string("id", ""), "ok");

  sock::send_line(fd, "{\"op\":\"shutdown\"}");
  const Json bye = Json::parse(sock::recv_line(fd));
  EXPECT_TRUE(bye.get_bool("shutdown", false));
  ::close(fd);
  daemon.join();

  // Both jobs ran to completion server-side. They share a cache key, so
  // the second is a hit — or an in-flight join when it catches the first
  // mid-compile (common under TSan, where compiles are slow).
  const PlanCache::Stats cs = server.cache().stats();
  EXPECT_GE(cs.misses + cs.hits + cs.inflight_waits, 2u);
}

TEST(ServeSocket, ShutdownUnblocksIdleConnections) {
  io::TempDir dir("oocc-serve-idle");
  const std::string path = dir.file("serve.sock").string();
  Server server(ServerOptions{});
  std::thread daemon([&] { serve_socket(server, path, 2); });
  int idle = -1;
  for (int i = 0; i < 1000 && idle < 0; ++i) {
    std::this_thread::sleep_for(10ms);
    idle = sock::connect_to(path);
  }
  ASSERT_GE(idle, 0) << "daemon did not come up";

  // `idle` never sends a byte, so its reader thread is parked in recv().
  // A shutdown from a second client must still terminate the daemon
  // (regression: the join loop used to block until idle clients hung up).
  const int fd = sock::connect_to(path);
  ASSERT_GE(fd, 0);
  sock::send_line(fd, "{\"op\":\"shutdown\",\"id\":\"bye\"}");
  const Json bye = Json::parse(sock::recv_line(fd));
  EXPECT_TRUE(bye.get_bool("shutdown", false));
  ::close(fd);
  daemon.join();
  ::close(idle);
}

}  // namespace
