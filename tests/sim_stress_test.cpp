// Stress and property tests for the SPMD simulator: randomized traffic,
// mixed collective sequences, clock causality, and the report formatter.
#include <gtest/gtest.h>

#include <atomic>

#include "oocc/sim/collectives.hpp"
#include "oocc/util/rng.hpp"

namespace oocc::sim {
namespace {

TEST(SimStressTest, RandomizedAllPairsTrafficIsLossless) {
  // Every rank sends a deterministic pseudo-random number of messages to
  // every other rank, then receives exactly the expected counts. All
  // payloads must arrive intact and per-(source, tag) in order.
  const int p = 6;
  const int max_msgs = 17;
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    // All ranks derive the same traffic matrix.
    int traffic[6][6];
    Rng shared(42);
    for (auto& row : traffic) {
      for (int& cell : row) {
        cell = static_cast<int>(shared.next_int(0, max_msgs));
      }
    }
    // Send phase: rank r sends traffic[r][d] messages to d, payload
    // encodes (r, d, seq).
    for (int d = 0; d < p; ++d) {
      if (d == ctx.rank()) {
        continue;
      }
      for (int s = 0; s < traffic[ctx.rank()][d]; ++s) {
        ctx.send_value<std::int64_t>(d, /*tag=*/7,
                                     ctx.rank() * 1000000 + d * 1000 + s);
      }
    }
    // Receive phase: from each source, in order.
    for (int src = 0; src < p; ++src) {
      if (src == ctx.rank()) {
        continue;
      }
      for (int s = 0; s < traffic[src][ctx.rank()]; ++s) {
        const std::int64_t v = ctx.recv_value<std::int64_t>(src, 7);
        EXPECT_EQ(v, src * 1000000 + ctx.rank() * 1000 + s);
      }
    }
  });
}

TEST(SimStressTest, InterleavedTagsWithWildcardDrain) {
  // Senders interleave two tags; the receiver drains one tag entirely,
  // then the other with a wildcard source — both orders must be intact.
  Machine machine(3, MachineCostModel::zero());
  machine.run([](SpmdContext& ctx) {
    if (ctx.rank() != 0) {
      for (int i = 0; i < 10; ++i) {
        ctx.send_value<int>(0, i % 2, ctx.rank() * 100 + i);
      }
      return;
    }
    int even_seen[3] = {0, 0, 0};
    for (int i = 0; i < 10; ++i) {  // 5 even-tag messages from each sender
      const int v = ctx.recv_value<int>(kAnySource, 0);
      const int sender = v / 100;
      const int seq = v % 100;
      EXPECT_EQ(seq % 2, 0);
      EXPECT_EQ(seq / 2, even_seen[sender]++);
    }
    for (int src = 1; src < 3; ++src) {
      for (int i = 1; i < 10; i += 2) {
        EXPECT_EQ(ctx.recv_value<int>(src, 1), src * 100 + i);
      }
    }
  });
}

TEST(SimStressTest, MixedCollectiveSequencesCompose) {
  // A realistic phase mix: bcast -> allreduce -> alltoallv -> gather ->
  // barrier, repeated; values must chain correctly through the rounds.
  const int p = 5;
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    double carry = 1.0;
    for (int round = 0; round < 4; ++round) {
      std::vector<double> seed;
      if (ctx.rank() == round % p) {
        seed = {carry + round};
      }
      broadcast(ctx, round % p, seed);
      ASSERT_EQ(seed.size(), 1u);

      const std::vector<double> mine{seed[0] + ctx.rank()};
      std::vector<double> sum = allreduce_sum<double>(
          ctx, std::span<const double>(mine.data(), mine.size()));
      // sum = p*seed + 0+1+...+(p-1)
      EXPECT_DOUBLE_EQ(sum[0], p * seed[0] + p * (p - 1) / 2.0);

      std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) {
        out[static_cast<std::size_t>(d)] = {ctx.rank() + d};
      }
      auto in = alltoallv(ctx, std::move(out));
      for (int s = 0; s < p; ++s) {
        EXPECT_EQ(in[static_cast<std::size_t>(s)][0], s + ctx.rank());
      }

      const std::vector<int> g{ctx.rank()};
      std::vector<int> all =
          gather<int>(ctx, 0, std::span<const int>(g.data(), g.size()));
      if (ctx.rank() == 0) {
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(all[static_cast<std::size_t>(r)], r);
        }
      }
      barrier(ctx);
      carry = sum[0];
    }
  });
}

TEST(SimStressTest, ClockCausalityThroughRandomDependencies) {
  // Random send/recv chains: a receiver's clock must never be earlier
  // than the send time of the message it consumed.
  const int p = 4;
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    Rng rng(static_cast<std::uint64_t>(ctx.rank()) + 99);
    // Ring of dependent messages with random local compute in between.
    const int next = (ctx.rank() + 1) % p;
    const int prev = (ctx.rank() - 1 + p) % p;
    double last_send_time = 0.0;
    for (int i = 0; i < 50; ++i) {
      ctx.charge_flops(static_cast<double>(rng.next_int(0, 100000)));
      last_send_time = ctx.clock().now();
      ctx.send_value<double>(next, 3, last_send_time);
      const double their_send_time = ctx.recv_value<double>(prev, 3);
      EXPECT_GE(ctx.clock().now(), their_send_time);
    }
  });
}

TEST(SimStressTest, ManyRanksBarrierStorm) {
  Machine machine(48, MachineCostModel::unit_test());
  RunReport report = machine.run([](SpmdContext& ctx) {
    for (int i = 0; i < 20; ++i) {
      barrier(ctx);
    }
  });
  // Dissemination barrier: ceil(log2 48) = 6 rounds, 20 barriers; every
  // rank sends exactly 120 messages.
  for (const auto& pstats : report.procs) {
    EXPECT_EQ(pstats.messages_sent, 120u);
  }
}

TEST(SimStressTest, FormatReportContainsBreakdown) {
  Machine machine(2, MachineCostModel::unit_test());
  RunReport report = machine.run([](SpmdContext& ctx) {
    ctx.charge_flops(1e6);
    barrier(ctx);
  });
  const std::string text = format_report(report);
  EXPECT_NE(text.find("compute (s)"), std::string::npos);
  EXPECT_NE(text.find("makespan:"), std::string::npos);
  // One line per proc plus header/rule/footer.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2 + 2 + 1);
}

}  // namespace
}  // namespace oocc::sim
