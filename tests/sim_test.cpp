// Unit tests for the SPMD machine simulator: point-to-point messaging,
// simulated-clock semantics, cost charging, stats, and the abort protocol.
#include <gtest/gtest.h>

#include <atomic>

#include "oocc/sim/collectives.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::sim {
namespace {

TEST(MachineTest, RunsBodyOncePerRank) {
  Machine machine(4, MachineCostModel::zero());
  std::atomic<int> mask{0};
  machine.run([&](SpmdContext& ctx) {
    EXPECT_EQ(ctx.nprocs(), 4);
    mask.fetch_or(1 << ctx.rank());
  });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(MachineTest, RejectsNonPositiveProcCount) {
  EXPECT_THROW(Machine(0, MachineCostModel::zero()), Error);
  EXPECT_THROW(Machine(-3, MachineCostModel::zero()), Error);
}

TEST(MachineTest, SendRecvMovesData) {
  Machine machine(2, MachineCostModel::zero());
  machine.run([](SpmdContext& ctx) {
    if (ctx.rank() == 0) {
      const std::vector<double> data{1.5, 2.5, 3.5};
      ctx.send<double>(1, 7, std::span<const double>(data));
    } else {
      const std::vector<double> got = ctx.recv<double>(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[1], 2.5);
    }
  });
}

TEST(MachineTest, TagAndSourceMatching) {
  // Rank 1 receives tag 2 before tag 1 even though they were sent in the
  // opposite order; matching must be by tag, not arrival.
  Machine machine(2, MachineCostModel::zero());
  machine.run([](SpmdContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value<int>(1, 1, 111);
      ctx.send_value<int>(1, 2, 222);
    } else {
      EXPECT_EQ(ctx.recv_value<int>(0, 2), 222);
      EXPECT_EQ(ctx.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(MachineTest, NonOvertakingPerSourceAndTag) {
  Machine machine(2, MachineCostModel::zero());
  machine.run([](SpmdContext& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        ctx.send_value<int>(1, 5, i);
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(ctx.recv_value<int>(0, 5), i);
      }
    }
  });
}

TEST(MachineTest, WildcardReceive) {
  Machine machine(3, MachineCostModel::zero());
  machine.run([](SpmdContext& ctx) {
    if (ctx.rank() != 0) {
      ctx.send_value<int>(0, 9, ctx.rank());
    } else {
      int sum = 0;
      sum += ctx.recv_value<int>(kAnySource, 9);
      sum += ctx.recv_value<int>(kAnySource, 9);
      EXPECT_EQ(sum, 3);  // ranks 1 + 2 in some order
    }
  });
}

TEST(MachineTest, SimulatedTimeFollowsHockneyModel) {
  MachineCostModel cost = MachineCostModel::unit_test();
  Machine machine(2, cost);
  RunReport report = machine.run([&](SpmdContext& ctx) {
    if (ctx.rank() == 0) {
      const std::vector<double> payload(1000);  // 8000 bytes
      ctx.send<double>(1, 0, std::span<const double>(payload));
    } else {
      (void)ctx.recv<double>(0, 0);
      const double expected = cost.comm.send_overhead_s +
                              cost.comm.latency_s +
                              8000.0 / cost.comm.bandwidth_Bps;
      EXPECT_NEAR(ctx.clock().now(), expected, 1e-12);
    }
  });
  // The receiver's clock is the makespan; the sender only paid overhead.
  EXPECT_NEAR(report.procs[0].sim_time_s, cost.comm.send_overhead_s, 1e-12);
  EXPECT_GT(report.procs[1].sim_time_s, report.procs[0].sim_time_s);
}

TEST(MachineTest, ReceiverNotDelayedWhenMessageAlreadyOld) {
  // If the receiver's clock is already past the arrival time, recv must
  // not move it backwards.
  Machine machine(2, MachineCostModel::unit_test());
  machine.run([](SpmdContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value<int>(1, 0, 1);
    } else {
      ctx.charge_flops(1e9);  // 1 second of local compute at unit-test rate
      const double before = ctx.clock().now();
      (void)ctx.recv_value<int>(0, 0);
      EXPECT_DOUBLE_EQ(ctx.clock().now(), before);
    }
  });
}

TEST(MachineTest, ChargeFlopsAdvancesClockAndStats) {
  Machine machine(1, MachineCostModel::unit_test());
  RunReport report = machine.run([](SpmdContext& ctx) {
    ctx.charge_flops(5000.0);
    EXPECT_NEAR(ctx.clock().now(), 5000.0 * 1e-9, 1e-15);
  });
  EXPECT_DOUBLE_EQ(report.procs[0].flops, 5000.0);
  EXPECT_NEAR(report.procs[0].compute_time_s, 5e-6, 1e-15);
}

TEST(MachineTest, StatsCountMessagesAndBytes) {
  Machine machine(2, MachineCostModel::zero());
  RunReport report = machine.run([](SpmdContext& ctx) {
    if (ctx.rank() == 0) {
      const std::vector<std::int32_t> data(25);
      ctx.send<std::int32_t>(1, 0, std::span<const std::int32_t>(data));
    } else {
      (void)ctx.recv<std::int32_t>(0, 0);
    }
  });
  EXPECT_EQ(report.procs[0].messages_sent, 1u);
  EXPECT_EQ(report.procs[0].bytes_sent, 100u);
  EXPECT_EQ(report.procs[1].messages_received, 1u);
  EXPECT_EQ(report.procs[1].bytes_received, 100u);
  EXPECT_EQ(report.total_messages(), 1u);
}

TEST(MachineTest, SelfSendIsAllowed) {
  Machine machine(1, MachineCostModel::zero());
  machine.run([](SpmdContext& ctx) {
    ctx.send_value<int>(0, 3, 77);
    EXPECT_EQ(ctx.recv_value<int>(0, 3), 77);
  });
}

TEST(MachineTest, InvalidDestinationThrows) {
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([](SpmdContext& ctx) {
                 ctx.send_value<int>(5, 0, 1);  // all ranks throw identically
               }),
               Error);
}

TEST(MachineTest, AbortReleasesBlockedPeers) {
  // Rank 0 throws; rank 1 is blocked in recv on a message that will never
  // come. The abort protocol must unblock rank 1 and the run must rethrow.
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([](SpmdContext& ctx) {
                 if (ctx.rank() == 0) {
                   OOCC_THROW(ErrorCode::kRuntimeError, "rank 0 dies");
                 } else {
                   (void)ctx.recv_value<int>(0, 0);  // never sent
                 }
               }),
               Error);
}

TEST(MachineTest, MachineReusableAfterAbort) {
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([](SpmdContext& ctx) {
                 if (ctx.rank() == 0) {
                   OOCC_THROW(ErrorCode::kRuntimeError, "boom");
                 } else {
                   (void)ctx.recv_value<int>(0, 0);
                 }
               }),
               Error);
  // A subsequent clean region must work (stale abort tokens are drained).
  std::atomic<int> ran{0};
  machine.run([&](SpmdContext& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value<int>(1, 0, 5);
    } else {
      EXPECT_EQ(ctx.recv_value<int>(0, 0), 5);
    }
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 2);
}

TEST(MachineTest, ReservedTagRejected) {
  Machine machine(1, MachineCostModel::zero());
  EXPECT_THROW(machine.run([](SpmdContext& ctx) {
                 ctx.send_value<int>(0, kAbortTag, 1);
               }),
               Error);
}

TEST(MachineTest, ResetAccountingZeroesClockAndStats) {
  Machine machine(2, MachineCostModel::unit_test());
  RunReport report = machine.run([](SpmdContext& ctx) {
    ctx.charge_flops(1e6);
    barrier(ctx);
    ctx.reset_accounting();
    ctx.charge_flops(1000.0);
  });
  for (const auto& p : report.procs) {
    EXPECT_DOUBLE_EQ(p.flops, 1000.0);
    EXPECT_NEAR(p.sim_time_s, 1e-6, 1e-12);
  }
}

TEST(MachineTest, RunReportAggregates) {
  Machine machine(3, MachineCostModel::unit_test());
  RunReport report = machine.run([](SpmdContext& ctx) {
    ctx.charge_flops(1e6 * (ctx.rank() + 1));
  });
  EXPECT_NEAR(report.max_sim_time_s(), 3e-3, 1e-9);
  EXPECT_GT(report.wall_time_s, 0.0);
}

TEST(ClockTest, RewindNeverMovesForward) {
  Clock c;
  c.advance(5.0);
  c.rewind_to(7.0);
  EXPECT_DOUBLE_EQ(c.now(), 5.0);
  c.rewind_to(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  c.wait_until(1.0);  // never backwards
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(CostModelTest, Presets) {
  const MachineCostModel delta = MachineCostModel::touchstone_delta();
  EXPECT_GT(delta.comm.latency_s, 0.0);
  EXPECT_GT(delta.compute.seconds_per_flop, 0.0);
  const MachineCostModel zero = MachineCostModel::zero();
  EXPECT_DOUBLE_EQ(zero.compute.flops_time(1e12), 0.0);
  EXPECT_NEAR(zero.comm.transfer_time(1e12), 0.0, 1e-15);
}

}  // namespace
}  // namespace oocc::sim
