// Tests for the compiled halo-stencil path: the Jacobi FORALL lowered by
// compiler/lower.cpp's stencil matcher into halo ReadSlab steps + ghost
// exchange + a Barrier, executed by exec's iterate-to-convergence driver.
//
// The hand-coded apps/jacobi.cpp kernel is the oracle: the compiled step
// program must be bit-identical to it across distributions (processor
// counts) and memory budgets, its priced LAF traffic (halo reads included)
// must equal the measured IoStats counters, and unsupported stencil shapes
// must produce structured "stencil lowering: ..." diagnostics instead of
// silently mis-lowering.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "oocc/apps/jacobi.hpp"
#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc {
namespace {

using io::DiskModel;
using io::StorageOrder;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

double hot_edge(std::int64_t r, std::int64_t c) {
  return c == 0 ? 100.0 : (r % 4 == 0 ? 2.0 : -1.0);
}

compiler::NodeProgram compile_stencil(std::int64_t n, int p,
                                      std::int64_t budget) {
  compiler::CompileOptions options;
  options.memory_budget_elements = budget;
  return compiler::compile_source(hpf::stencil_source(n, p), options);
}

struct CompiledRun {
  std::vector<double> state;  ///< gathered final state (rank 0)
  exec::StencilRunInfo info;
  runtime::SlabCacheStats cache;
  /// Per-rank, per-array LAF counters accumulated over the run.
  std::map<int, std::map<std::string, io::IoStats>> stats;
};

CompiledRun run_compiled(const compiler::NodeProgram& plan, std::int64_t n,
                         int p, int iters, bool use_cache,
                         double tol = 0.0) {
  CompiledRun out;
  TempDir dir("oocc-stencil");
  Machine machine(p, MachineCostModel::zero());
  std::mutex mu;
  machine.run([&](SpmdContext& ctx) {
    auto arrays =
        exec::create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
    arrays.at("a")->initialize(ctx, hot_edge, n * n);
    for (auto& [name, arr] : arrays) {
      arr->laf().reset_stats();
    }
    sim::barrier(ctx);
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions options;
    options.use_cache = use_cache;
    options.max_iters = iters;
    options.residual_tol = tol;
    exec::StencilRunInfo info;
    options.stencil_info = &info;
    runtime::SlabCacheStats cache;
    options.cache_stats = &cache;
    exec::execute(ctx, plan, bindings, options);
    // Snapshot the counters before gather_global pollutes them.
    std::map<std::string, io::IoStats> measured;
    for (auto& [name, arr] : arrays) {
      measured[name] = arr->laf().stats();
    }
    std::vector<double> state =
        arrays.at(info.result)->gather_global(ctx, n * n);
    std::lock_guard<std::mutex> lock(mu);
    out.cache.merge(cache);
    out.stats[ctx.rank()] = std::move(measured);
    if (ctx.rank() == 0) {
      out.state = std::move(state);
      out.info = info;
    }
  });
  return out;
}

std::vector<double> run_oracle(std::int64_t n, int p, int iters,
                               std::int64_t slab_elements) {
  std::vector<double> state;
  TempDir dir("oocc-stencil-oracle");
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(n, n, p),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                              hpf::column_block(n, n, p),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, hot_edge, n * n);
    runtime::OutOfCoreArray& fin =
        apps::ooc_jacobi(ctx, a, b, iters, slab_elements);
    std::vector<double> got = fin.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      state = std::move(got);
    }
  });
  return state;
}

// ---------------------------------------------------------------- lowering

TEST(StencilLowering, RecognizesTheJacobiForall) {
  const compiler::NodeProgram plan = compile_stencil(32, 4, 1 << 10);
  EXPECT_EQ(plan.kind, compiler::ProgramKind::kStencil);
  ASSERT_EQ(plan.stencils.size(), 1u);
  EXPECT_EQ(plan.stencils[0].lhs, "b");
  EXPECT_EQ(plan.stencils[0].source, "a");
  EXPECT_EQ(plan.stencils[0].halo, 1);
  EXPECT_EQ(plan.stencils[0].row_halo, 1);
  // Steps: exchange, sweep (halo read + compute + write), barrier.
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.steps[0].kind, compiler::StepKind::kExchangeHalo);
  EXPECT_EQ(plan.steps[1].kind, compiler::StepKind::kForEachSlab);
  ASSERT_EQ(plan.steps[1].body.size(), 3u);
  EXPECT_EQ(plan.steps[1].body[0].kind, compiler::StepKind::kReadSlab);
  EXPECT_EQ(plan.steps[1].body[0].halo, 1);
  EXPECT_EQ(plan.steps[1].body[1].kind, compiler::StepKind::kComputeStencil);
  EXPECT_EQ(plan.steps[1].body[2].kind, compiler::StepKind::kWriteSlab);
  EXPECT_EQ(plan.steps[2].kind, compiler::StepKind::kBarrier);
}

TEST(StencilLowering, StepProgramTextShowsHaloSections) {
  const compiler::NodeProgram plan = compile_stencil(32, 4, 1 << 10);
  const std::string text = compiler::step_program_text(plan);
  EXPECT_NE(text.find("exchange-halo"), std::string::npos);
  EXPECT_NE(text.find("(halo +/-1, clipped)"), std::string::npos);
  EXPECT_NE(text.find("compute-stencil"), std::string::npos);
  const std::string pseudo = compiler::pseudo_code(plan);
  EXPECT_NE(pseudo.find("widened by 1"), std::string::npos);
}

TEST(StencilLowering, ParameterScalarsFoldToConstants) {
  // A parameter coefficient in the rhs must fold at lowering — the
  // executor's stencil evaluator binds only the FORALL index, so a
  // surviving VarRef would silently evaluate as the column number.
  const std::string with_param =
      "      parameter (n=16, p=2, w=2)\n"
      "      real a(n,n), b(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: a, b\n"
      "      forall (k=2:n-1)\n"
      "        b(1:n,k) = (w*a(1:n,k-1) + w*a(1:n,k+1))/4\n"
      "      end forall\n"
      "      end\n";
  const std::string with_literal =
      "      parameter (n=16, p=2)\n"
      "      real a(n,n), b(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: a, b\n"
      "      forall (k=2:n-1)\n"
      "        b(1:n,k) = (2*a(1:n,k-1) + 2*a(1:n,k+1))/4\n"
      "      end forall\n"
      "      end\n";
  compiler::CompileOptions options;
  options.memory_budget_elements = 16 * 10;
  const compiler::NodeProgram folded =
      compiler::compile_source(with_param, options);
  const compiler::NodeProgram literal =
      compiler::compile_source(with_literal, options);
  // The normalized trees must be free of parameter VarRefs...
  std::function<void(const hpf::Expr&)> no_vars =
      [&](const hpf::Expr& e) {
        EXPECT_NE(e.kind, hpf::ExprKind::kVarRef);
        if (e.lhs) no_vars(*e.lhs);
        if (e.rhs) no_vars(*e.rhs);
      };
  no_vars(*folded.stencils[0].rhs);
  // ...and both spellings must run bit-identically.
  const CompiledRun a = run_compiled(folded, 16, 2, 3, true);
  const CompiledRun b = run_compiled(literal, 16, 2, 3, true);
  ASSERT_EQ(a.state.size(), b.state.size());
  for (std::size_t i = 0; i < a.state.size(); ++i) {
    ASSERT_EQ(a.state[i], b.state[i]) << "element " << i;
  }
}

// --------------------------------------------------- oracle bit-identity

struct StencilCase {
  int nprocs;
  std::int64_t n;
  int iters;
  std::int64_t budget;  ///< compiler memory budget in elements
};

class StencilOracleTest : public ::testing::TestWithParam<StencilCase> {};

// >= 2 distributions (P = 1, 3, 4 column-BLOCK instances) x >= 2 memory
// budgets (whole-array vs tight multi-slab).
INSTANTIATE_TEST_SUITE_P(
    Sweep, StencilOracleTest,
    ::testing::Values(StencilCase{1, 16, 3, 16 * 40},
                      StencilCase{1, 16, 3, 16 * 8},
                      StencilCase{4, 16, 5, 16 * 24},
                      StencilCase{4, 16, 5, 16 * 8},
                      StencilCase{4, 32, 4, 32 * 20},
                      StencilCase{3, 18, 4, 18 * 12}),
    [](const ::testing::TestParamInfo<StencilCase>& info) {
      return "p" + std::to_string(info.param.nprocs) + "_n" +
             std::to_string(info.param.n) + "_it" +
             std::to_string(info.param.iters) + "_m" +
             std::to_string(info.param.budget);
    });

TEST_P(StencilOracleTest, CompiledIsBitIdenticalToHandcodedJacobi) {
  const StencilCase tc = GetParam();
  const compiler::NodeProgram plan =
      compile_stencil(tc.n, tc.nprocs, tc.budget);
  const CompiledRun compiled =
      run_compiled(plan, tc.n, tc.nprocs, tc.iters, /*use_cache=*/true);
  const std::vector<double> oracle =
      run_oracle(tc.n, tc.nprocs, tc.iters, tc.n * 2);
  ASSERT_EQ(compiled.state.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(compiled.state[i], oracle[i]) << "element " << i;
  }
  EXPECT_EQ(compiled.info.iterations, tc.iters);
}

TEST(StencilExec, CacheOnAndOffAreBitIdentical) {
  const compiler::NodeProgram plan = compile_stencil(16, 4, 16 * 8);
  const CompiledRun pooled = run_compiled(plan, 16, 4, 4, true);
  const CompiledRun plain = run_compiled(plan, 16, 4, 4, false);
  ASSERT_EQ(pooled.state.size(), plain.state.size());
  for (std::size_t i = 0; i < plain.state.size(); ++i) {
    ASSERT_EQ(pooled.state[i], plain.state[i]) << "element " << i;
  }
  // The pool serves the later sweeps' halo reads from the slabs the
  // previous sweep staged.
  EXPECT_GT(pooled.cache.hits, 0u);
}

TEST(StencilExec, MatchesSerialReference) {
  const std::int64_t n = 16;
  const compiler::NodeProgram plan = compile_stencil(n, 2, n * 10);
  const CompiledRun compiled = run_compiled(plan, n, 2, 6, true);
  const std::vector<double> want = apps::serial_jacobi(n, 6, hot_edge);
  ASSERT_EQ(compiled.state.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(compiled.state[i], want[i]) << "element " << i;
  }
}

// ------------------------------------------------------ priced == measured

TEST(StencilPricing, PricedHaloReadsMatchMeasuredCounters) {
  const std::int64_t n = 32;
  const int p = 4;
  const compiler::NodeProgram plan = compile_stencil(n, p, n * 8);
  // One sweep, pool off: the pricer walks exactly what the executor runs.
  const CompiledRun run =
      run_compiled(plan, n, p, /*iters=*/1, /*use_cache=*/false);
  for (int rank = 0; rank < p; ++rank) {
    const compiler::PlanPrice price = compiler::price_plan(plan, rank);
    for (const auto& [name, cost] : price.arrays) {
      const io::IoStats& s = run.stats.at(rank).at(name);
      EXPECT_DOUBLE_EQ(static_cast<double>(s.read_requests),
                       cost.read_requests)
          << name << " rank " << rank;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_read) / 8.0,
                       cost.elements_read)
          << name << " rank " << rank;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.write_requests),
                       cost.write_requests)
          << name << " rank " << rank;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_written) / 8.0,
                       cost.elements_written)
          << name << " rank " << rank;
    }
  }
}

TEST(StencilPricing, CachedPriceMatchesMeasuredCounters) {
  const std::int64_t n = 32;
  const int p = 2;
  const compiler::NodeProgram plan = compile_stencil(n, p, n * 8);
  const CompiledRun run =
      run_compiled(plan, n, p, /*iters=*/1, /*use_cache=*/true);
  compiler::PriceOptions popts;
  popts.model_cache = true;
  double priced_hits = 0.0;
  for (int rank = 0; rank < p; ++rank) {
    const compiler::PlanPrice price = compiler::price_plan(plan, rank, popts);
    priced_hits += price.cache_hits;
    for (const auto& [name, cost] : price.arrays) {
      const io::IoStats& s = run.stats.at(rank).at(name);
      EXPECT_DOUBLE_EQ(static_cast<double>(s.read_requests),
                       cost.read_requests)
          << name << " rank " << rank;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_read) / 8.0,
                       cost.elements_read)
          << name << " rank " << rank;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.write_requests),
                       cost.write_requests)
          << name << " rank " << rank;
      EXPECT_DOUBLE_EQ(static_cast<double>(s.bytes_written) / 8.0,
                       cost.elements_written)
          << name << " rank " << rank;
    }
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(run.cache.hits), priced_hits);
}

// ------------------------------------------------------ convergence driver

TEST(StencilExec, ConvergenceDriverStopsAtResidual) {
  const std::int64_t n = 8;
  const compiler::NodeProgram plan = compile_stencil(n, 2, n * 10);
  const CompiledRun run = run_compiled(plan, n, 2, /*iters=*/300,
                                       /*use_cache=*/true, /*tol=*/1e-2);
  EXPECT_LT(run.info.iterations, 300);
  EXPECT_GT(run.info.iterations, 1);
  EXPECT_LE(run.info.final_residual, 1e-2);
  // The early-stopped state equals the oracle run for that sweep count.
  const std::vector<double> oracle =
      run_oracle(n, 2, run.info.iterations, n * 4);
  ASSERT_EQ(run.state.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(run.state[i], oracle[i]) << "element " << i;
  }
}

TEST(StencilExec, ResultNameFollowsThePingPong) {
  const std::int64_t n = 16;
  const compiler::NodeProgram plan = compile_stencil(n, 1, n * 10);
  EXPECT_EQ(run_compiled(plan, n, 1, 1, true).info.result, "b");
  EXPECT_EQ(run_compiled(plan, n, 1, 2, true).info.result, "a");
  EXPECT_EQ(run_compiled(plan, n, 1, 3, true).info.result, "b");
}

// ----------------------------------------------------- diagnostics (no
// silent mis-lowering: stencil-shaped but unsupported statements throw)

void expect_stencil_error(const std::string& source,
                          const std::string& needle) {
  try {
    compiler::CompileOptions options;
    options.memory_budget_elements = 1 << 12;
    compiler::compile_source(source, options);
    FAIL() << "expected a stencil lowering error mentioning '" << needle
           << "'";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCompileError);
    const std::string what = e.what();
    EXPECT_NE(what.find("stencil lowering"), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

std::string stencil_prologue() {
  return "      parameter (n=16, p=4)\n"
         "      real a(n,n), b(n,n)\n"
         "!hpf$ processors Pr(p)\n"
         "!hpf$ template d(n)\n"
         "!hpf$ distribute d(block) onto Pr\n"
         "!hpf$ align (*,:) with d :: a, b\n";
}

TEST(StencilDiagnostics, MixedDistancesRejected) {
  expect_stencil_error(stencil_prologue() +
                           "      forall (k=2:n-1)\n"
                           "        b(1:n,k) = (a(1:n,k-1) + a(1:n,k+2))/2\n"
                           "      end forall\n"
                           "      end\n",
                       "mixed stencil distances");
}

TEST(StencilDiagnostics, RowSubscriptStencilRejected) {
  expect_stencil_error(stencil_prologue() +
                           "      forall (k=2:n-1)\n"
                           "        b(k,k) = (a(k,k-1) + a(k,k+1))/2\n"
                           "      end forall\n"
                           "      end\n",
                       "row-subscript stencils are unsupported");
}

TEST(StencilDiagnostics, HaloBeyondSlabWidthRejected) {
  // d = 2 with a budget that only affords 1-column slabs: the halo read
  // would span more than the adjacent slab.
  const std::string source =
      stencil_prologue() +
      "      forall (k=3:n-2)\n"
      "        b(1:n,k) = (a(1:n,k-2) + a(1:n,k+2))/2\n"
      "      end forall\n"
      "      end\n";
  try {
    compiler::CompileOptions options;
    options.memory_budget_elements = 16 * 12;  // w = 3 - 2 = 1 < d = 2
    compiler::compile_source(source, options);
    FAIL() << "expected the slab-width diagnostic";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCompileError);
    const std::string what = e.what();
    EXPECT_NE(what.find("exceeds the slab width"), std::string::npos)
        << what;
  }
}

TEST(StencilDiagnostics, WideBudgetAcceptsDistanceTwo) {
  // The same d = 2 stencil lowers fine once the slabs are wide enough.
  const std::string source =
      stencil_prologue() +
      "      forall (k=3:n-2)\n"
      "        b(1:n,k) = (a(1:n,k-2) + a(1:n,k+2))/2\n"
      "      end forall\n"
      "      end\n";
  compiler::CompileOptions options;
  options.memory_budget_elements = 16 * 16;
  const compiler::NodeProgram plan =
      compiler::compile_source(source, options);
  EXPECT_EQ(plan.kind, compiler::ProgramKind::kStencil);
  EXPECT_EQ(plan.stencils[0].halo, 2);
  EXPECT_EQ(plan.stencils[0].row_halo, 0);
}

TEST(StencilDiagnostics, InPlaceStencilRejected) {
  expect_stencil_error(stencil_prologue() +
                           "      forall (k=2:n-1)\n"
                           "        a(1:n,k) = (a(1:n,k-1) + a(1:n,k+1))/2\n"
                           "      end forall\n"
                           "      end\n",
                       "in-place stencils");
}

TEST(StencilDiagnostics, CyclicDistributionRejected) {
  const std::string source =
      "      parameter (n=16, p=4)\n"
      "      real a(n,n), b(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(cyclic) onto Pr\n"
      "!hpf$ align (*,:) with d :: a, b\n"
      "      forall (k=2:n-1)\n"
      "        b(1:n,k) = (a(1:n,k-1) + a(1:n,k+1))/2\n"
      "      end forall\n"
      "      end\n";
  expect_stencil_error(source, "column-BLOCK");
}

TEST(StencilDiagnostics, TwoSourceArraysRejected) {
  const std::string source =
      "      parameter (n=16, p=4)\n"
      "      real a(n,n), b(n,n), x(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: a, b, x\n"
      "      forall (k=2:n-1)\n"
      "        b(1:n,k) = (a(1:n,k-1) + x(1:n,k+1))/2\n"
      "      end forall\n"
      "      end\n";
  expect_stencil_error(source, "exactly one source array");
}

TEST(StencilDiagnostics, WrongForallBoundsRejected) {
  expect_stencil_error(stencil_prologue() +
                           "      forall (k=1:n)\n"
                           "        b(1:n,k) = (a(1:n,k-1) + a(1:n,k+1))/2\n"
                           "      end forall\n"
                           "      end\n",
                       "must exclude the halo");
}

}  // namespace
}  // namespace oocc
