// End-to-end smoke test for the oocc_compile driver: compile one of the
// bundled HPF programs and check that the tool exits cleanly and emits a
// decision report plus a node program. Keeps the tool target wired into the
// pipeline — a regression in the parser, compiler, or driver plumbing that
// breaks the CLI fails here even if the unit suites still pass.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "oocc/hpf/programs.hpp"
#include "oocc/io/file_backend.hpp"

#ifndef OOCC_COMPILE_BIN
#define OOCC_COMPILE_BIN ""
#endif

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class OoccCompileSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(OOCC_COMPILE_BIN).empty()) {
      GTEST_SKIP() << "oocc_compile was not built (OOCC_BUILD_TOOLS=OFF)";
    }
  }
};

TEST_F(OoccCompileSmoke, CompilesBundledGaxpyProgram) {
  oocc::io::TempDir dir("oocc-smoke");
  const auto program = dir.file("gaxpy.hpf");
  {
    std::ofstream out(program);
    out << oocc::hpf::gaxpy_source(64, 4);
  }
  const auto stdout_path = dir.file("out.txt");
  const auto stderr_path = dir.file("err.txt");

  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN + "\" \"" +
                          program.string() + "\" > \"" +
                          stdout_path.string() + "\" 2> \"" +
                          stderr_path.string() + "\"";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "stderr:\n" << read_file(stderr_path);

  const std::string output = read_file(stdout_path);
  EXPECT_FALSE(output.empty());
  EXPECT_NE(output.find("decision report"), std::string::npos) << output;
  EXPECT_NE(output.find("node program"), std::string::npos) << output;
}

TEST_F(OoccCompileSmoke, DumpPlanPrintsStepProgram) {
  oocc::io::TempDir dir("oocc-smoke");
  const auto program = dir.file("chain.hpf");
  {
    std::ofstream out(program);
    out << "parameter (n=16, p=2)\n"
           "real x(n,n), y(n,n), z(n,n)\n"
           "!hpf$ processors Pr(p)\n"
           "!hpf$ template d(n)\n"
           "!hpf$ distribute d(block) onto Pr\n"
           "!hpf$ align (*,:) with d :: x, y, z\n"
           "forall (k=1:n)\n"
           "  y(1:n,k) = x(1:n,k)*2 + 1\n"
           "end forall\n"
           "forall (k=1:n)\n"
           "  z(1:n,k) = y(1:n,k)*y(1:n,k)\n"
           "end forall\n"
           "end\n";
  }
  const auto stdout_path = dir.file("out.txt");
  const auto stderr_path = dir.file("err.txt");
  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN + "\" \"" +
                          program.string() + "\" --dump-plan > \"" +
                          stdout_path.string() + "\" 2> \"" +
                          stderr_path.string() + "\"";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "stderr:\n" << read_file(stderr_path);

  const std::string output = read_file(stdout_path);
  // The two statements fuse into one sweep whose step IR reads x once and
  // writes both produced arrays; the step price table rides along.
  EXPECT_NE(output.find("step program"), std::string::npos) << output;
  EXPECT_NE(output.find("for-each-slab"), std::string::npos) << output;
  EXPECT_NE(output.find("read-slab x"), std::string::npos) << output;
  EXPECT_NE(output.find("write-slab z"), std::string::npos) << output;
  EXPECT_NE(output.find("step I/O price"), std::string::npos) << output;
  EXPECT_EQ(output.find("read-slab y"), std::string::npos) << output;
}

TEST_F(OoccCompileSmoke, AutoPrefetchAndNoCacheFlags) {
  oocc::io::TempDir dir("oocc-smoke");
  const auto program = dir.file("gaxpy.hpf");
  {
    std::ofstream out(program);
    out << oocc::hpf::gaxpy_source(32, 2);
  }
  const auto stdout_path = dir.file("out.txt");
  const auto stderr_path = dir.file("err.txt");
  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN + "\" \"" +
                          program.string() +
                          "\" --prefetch=auto --no-cache --run > \"" +
                          stdout_path.string() + "\" 2> \"" +
                          stderr_path.string() + "\"";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "stderr:\n" << read_file(stderr_path);

  const std::string output = read_file(stdout_path);
  // The auto decision is reported, and --no-cache suppresses the pool's
  // counter line.
  EXPECT_NE(output.find("prefetch: auto:"), std::string::npos) << output;
  EXPECT_NE(output.find("=== execution ==="), std::string::npos) << output;
  EXPECT_EQ(output.find("slab cache:"), std::string::npos) << output;
}

TEST_F(OoccCompileSmoke, DumpPlanPricesTheSlabCache) {
  oocc::io::TempDir dir("oocc-smoke");
  const auto program = dir.file("chain.hpf");
  {
    std::ofstream out(program);
    out << "parameter (n=16, p=2)\n"
           "real x(n,n), y(n,n), z(n,n)\n"
           "!hpf$ processors Pr(p)\n"
           "!hpf$ template d(n)\n"
           "!hpf$ distribute d(block) onto Pr\n"
           "!hpf$ align (*,:) with d :: x, y, z\n"
           "forall (k=1:n)\n"
           "  y(1:n,k) = x(1:n,k)*2 + 1\n"
           "end forall\n"
           "forall (k=1:n)\n"
           "  z(1:n,k) = y(1:n,k)*x(1:n,k)\n"
           "end forall\n"
           "end\n";
  }
  const auto stdout_path = dir.file("out.txt");
  const auto stderr_path = dir.file("err.txt");
  // --no-fuse keeps two statements; at this budget both sweeps are single
  // slabs of identical geometry, so statement 2's reads of x and y are
  // exactly the two priced cache hits.
  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN + "\" \"" +
                          program.string() +
                          "\" --memory 1024 --no-fuse --dump-plan > \"" +
                          stdout_path.string() + "\" 2> \"" +
                          stderr_path.string() + "\"";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "stderr:\n" << read_file(stderr_path);

  const std::string output = read_file(stdout_path);
  EXPECT_NE(output.find("step I/O price with slab cache"), std::string::npos)
      << output;
  EXPECT_NE(output.find("cache hits: 2"), std::string::npos) << output;
}

TEST_F(OoccCompileSmoke, StencilDemoRunsAndVerifies) {
  oocc::io::TempDir dir("oocc-smoke");
  const auto stdout_path = dir.file("out.txt");
  const auto stderr_path = dir.file("err.txt");
  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN +
                          "\" --stencil=32,4 --memory 512 --run --verify "
                          "--iters 3 > \"" +
                          stdout_path.string() + "\" 2> \"" +
                          stderr_path.string() + "\"";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "stderr:\n" << read_file(stderr_path);

  const std::string output = read_file(stdout_path);
  EXPECT_NE(output.find("stencil-forall"), std::string::npos) << output;
  EXPECT_NE(output.find("3 sweep(s) run"), std::string::npos) << output;
  EXPECT_NE(output.find("BIT-IDENTICAL"), std::string::npos) << output;
}

TEST_F(OoccCompileSmoke, RejectsMissingInputWithUsage) {
  oocc::io::TempDir dir("oocc-smoke");
  const auto stderr_path = dir.file("err.txt");
  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN +
                          "\" > /dev/null 2> \"" + stderr_path.string() + "\"";
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 2);
  EXPECT_NE(read_file(stderr_path).find("usage:"), std::string::npos);
}

}  // namespace
