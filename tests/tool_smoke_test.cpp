// End-to-end smoke test for the oocc_compile driver: compile one of the
// bundled HPF programs and check that the tool exits cleanly and emits a
// decision report plus a node program. Keeps the tool target wired into the
// pipeline — a regression in the parser, compiler, or driver plumbing that
// breaks the CLI fails here even if the unit suites still pass.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "oocc/hpf/programs.hpp"
#include "oocc/io/file_backend.hpp"

#ifndef OOCC_COMPILE_BIN
#define OOCC_COMPILE_BIN ""
#endif

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class OoccCompileSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(OOCC_COMPILE_BIN).empty()) {
      GTEST_SKIP() << "oocc_compile was not built (OOCC_BUILD_TOOLS=OFF)";
    }
  }
};

TEST_F(OoccCompileSmoke, CompilesBundledGaxpyProgram) {
  oocc::io::TempDir dir("oocc-smoke");
  const auto program = dir.file("gaxpy.hpf");
  {
    std::ofstream out(program);
    out << oocc::hpf::gaxpy_source(64, 4);
  }
  const auto stdout_path = dir.file("out.txt");
  const auto stderr_path = dir.file("err.txt");

  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN + "\" \"" +
                          program.string() + "\" > \"" +
                          stdout_path.string() + "\" 2> \"" +
                          stderr_path.string() + "\"";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << "stderr:\n" << read_file(stderr_path);

  const std::string output = read_file(stdout_path);
  EXPECT_FALSE(output.empty());
  EXPECT_NE(output.find("decision report"), std::string::npos) << output;
  EXPECT_NE(output.find("node program"), std::string::npos) << output;
}

TEST_F(OoccCompileSmoke, RejectsMissingInputWithUsage) {
  oocc::io::TempDir dir("oocc-smoke");
  const auto stderr_path = dir.file("err.txt");
  const std::string cmd = std::string("\"") + OOCC_COMPILE_BIN +
                          "\" > /dev/null 2> \"" + stderr_path.string() + "\"";
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  EXPECT_EQ(WEXITSTATUS(rc), 2);
  EXPECT_NE(read_file(stderr_path).find("usage:"), std::string::npos);
}

}  // namespace
