// Tests for the shared Global Array File, two-phase collective I/O, and
// the out-of-core transpose built on the routing machinery.
#include <gtest/gtest.h>

#include "oocc/io/gaf.hpp"
#include "oocc/runtime/redistribute.hpp"
#include "oocc/runtime/twophase.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc::runtime {
namespace {

using hpf::column_block;
using hpf::row_block;
using io::DiskModel;
using io::GlobalArrayFile;
using io::Section;
using io::StorageOrder;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

double gen(std::int64_t r, std::int64_t c) {
  return static_cast<double>(r * 1000 + c);
}

TEST(GlobalArrayFileTest, SharedReadsFromAllRanks) {
  TempDir dir;
  GlobalArrayFile gaf(dir.file("g.bin"), 8, 8, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  gaf.fill_host(gen);
  Machine machine(4, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    // Every rank reads a different column concurrently.
    std::vector<double> col(8);
    const std::int64_t c = ctx.rank() * 2;
    gaf.read_section(ctx, Section{0, 8, c, c + 1},
                     std::span<double>(col.data(), col.size()));
    for (std::int64_t r = 0; r < 8; ++r) {
      EXPECT_DOUBLE_EQ(col[static_cast<std::size_t>(r)], gen(r, c));
    }
  });
  EXPECT_EQ(gaf.stats().read_requests, 4u);
}

TEST(GlobalArrayFileTest, ExtentAccountingMatchesLaf) {
  TempDir dir;
  GlobalArrayFile gaf(dir.file("g.bin"), 16, 16, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  // Full columns: 1 extent; partial rows across all columns: 16 extents.
  EXPECT_EQ(gaf.section_request_count(Section{0, 16, 2, 6}), 1u);
  EXPECT_EQ(gaf.section_request_count(Section{3, 9, 0, 16}), 16u);
}

TEST(GlobalArrayFileTest, ConcurrentWritersToDisjointSections) {
  TempDir dir;
  GlobalArrayFile gaf(dir.file("w.bin"), 8, 8, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  Machine machine(4, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    // Each rank writes its own pair of columns.
    const std::int64_t c0 = ctx.rank() * 2;
    std::vector<double> cols(16);
    for (std::int64_t i = 0; i < 16; ++i) {
      cols[static_cast<std::size_t>(i)] =
          static_cast<double>(ctx.rank() * 100 + i);
    }
    gaf.write_section(ctx, Section{0, 8, c0, c0 + 2},
                      std::span<const double>(cols.data(), cols.size()));
    sim::barrier(ctx);
    // Everyone reads back the whole file and checks every rank's part.
    std::vector<double> all(64);
    gaf.read_section(ctx, Section{0, 8, 0, 8},
                     std::span<double>(all.data(), all.size()));
    for (int writer = 0; writer < 4; ++writer) {
      for (std::int64_t i = 0; i < 16; ++i) {
        ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(writer * 16 + i)],
                         static_cast<double>(writer * 100 + i));
      }
    }
  });
}

TEST(GlobalArrayFileTest, RowMajorOrderSupported) {
  TempDir dir;
  GlobalArrayFile gaf(dir.file("rm.bin"), 6, 6, StorageOrder::kRowMajor,
                      DiskModel::zero());
  gaf.fill_host(gen);
  // Row slab of a row-major file: one extent.
  EXPECT_EQ(gaf.section_request_count(Section{2, 4, 0, 6}), 1u);
  Machine machine(1, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    std::vector<double> buf(12);
    gaf.read_section(ctx, Section{2, 4, 0, 6},
                     std::span<double>(buf.data(), buf.size()));
    // Column-major section order buffer: element (r=3, c=5) at (5-0)*2+1.
    EXPECT_DOUBLE_EQ(buf[11], gen(3, 5));
  });
}

TEST(GlobalArrayFileTest, StatsAccumulateAcrossRanks) {
  TempDir dir;
  GlobalArrayFile gaf(dir.file("s.bin"), 8, 8, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  gaf.fill_host(gen);
  Machine machine(4, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    std::vector<double> col(8);
    gaf.read_section(ctx, Section{0, 8, ctx.rank(), ctx.rank() + 1},
                     std::span<double>(col.data(), col.size()));
  });
  EXPECT_EQ(gaf.stats().read_requests, 4u);
  EXPECT_EQ(gaf.stats().bytes_read, 4u * 8u * 8u);
  gaf.reset_stats();
  EXPECT_EQ(gaf.stats().read_requests, 0u);
}

class TwoPhaseTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Procs, TwoPhaseTest, ::testing::Values(1, 2, 4));

TEST_P(TwoPhaseTest, DirectLoadColumnBlockIsCorrectAndCheap) {
  const int p = GetParam();
  const std::int64_t n = 16;
  TempDir dir;
  GlobalArrayFile gaf(dir.file("g.bin"), n, n, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  gaf.fill_host(gen);
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray dst(ctx, dir.path(), "dst", column_block(n, n, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    direct_load(ctx, gaf, dst, n * 2);
    std::vector<double> global = dst.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * n + r)],
                           gen(r, c));
        }
      }
    }
  });
  // Column-block conforms to the column-major file: per proc, one request
  // per 2-column slab -> (n/p)/2 requests, all contiguous.
  EXPECT_EQ(gaf.stats().read_requests,
            static_cast<std::uint64_t>(p) *
                static_cast<std::uint64_t>((n / p + 1) / 2));
}

TEST_P(TwoPhaseTest, DirectLoadRowBlockPaysStridedExtents) {
  const int p = GetParam();
  if (p == 1) {
    return;  // row-block == whole array at P=1; nothing strided
  }
  const std::int64_t n = 16;
  TempDir dir;
  GlobalArrayFile gaf(dir.file("g.bin"), n, n, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  gaf.fill_host(gen);
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray dst(ctx, dir.path(), "dst", row_block(n, n, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    direct_load(ctx, gaf, dst, n * n);
    std::vector<double> global = dst.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * n + r)],
                           gen(r, c));
        }
      }
    }
  });
  // Row-block from a column-major file: every processor touches every
  // column -> n extents per processor even with a whole-piece buffer.
  EXPECT_EQ(gaf.stats().read_requests,
            static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(n));
}

TEST_P(TwoPhaseTest, TwoPhaseLoadIsCorrectForRowBlock) {
  const int p = GetParam();
  const std::int64_t n = 16;
  TempDir dir;
  GlobalArrayFile gaf(dir.file("g.bin"), n, n, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  gaf.fill_host(gen);
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray dst(ctx, dir.path(), "dst", row_block(n, n, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    two_phase_load(ctx, gaf, dst, n * 4);
    std::vector<double> global = dst.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * n + r)],
                           gen(r, c));
        }
      }
    }
  });
  // Phase one reads conforming panels: (n/p)/4-ish slabs per proc, one
  // contiguous request each — far fewer than direct row-block loading.
  EXPECT_LE(gaf.stats().read_requests,
            static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(n / 4));
}

TEST_P(TwoPhaseTest, TwoPhaseLoadHandlesCyclicDestination) {
  const int p = GetParam();
  const std::int64_t n = 12;
  TempDir dir;
  GlobalArrayFile gaf(dir.file("g.bin"), n, n, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  gaf.fill_host(gen);
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    const hpf::ArrayDistribution cyclic(n, n, hpf::DistAxis::kCols,
                                        hpf::DistKind::kCyclic, p);
    OutOfCoreArray dst(ctx, dir.path(), "dst", cyclic,
                       StorageOrder::kColumnMajor, DiskModel::zero());
    two_phase_load(ctx, gaf, dst, n * 3);
    std::vector<double> global = dst.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * n + r)],
                           gen(r, c));
        }
      }
    }
  });
}

TEST(TwoPhaseTest, DirectLoadRejectsCyclic) {
  TempDir dir;
  GlobalArrayFile gaf(dir.file("g.bin"), 8, 8, StorageOrder::kColumnMajor,
                      DiskModel::zero());
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 const hpf::ArrayDistribution cyclic(
                     8, 8, hpf::DistAxis::kCols, hpf::DistKind::kCyclic, 2);
                 OutOfCoreArray dst(ctx, dir.path(), "dst", cyclic,
                                    StorageOrder::kColumnMajor,
                                    DiskModel::zero());
                 direct_load(ctx, gaf, dst, 64);
               }),
               Error);
}

// ---------------------------------------------------------------------
// Out-of-core transpose

class TransposeTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Procs, TransposeTest, ::testing::Values(1, 2, 4));

TEST_P(TransposeTest, SquareTransposeCorrect) {
  const int p = GetParam();
  const std::int64_t n = 12;
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray src(ctx, dir.path(), "src", column_block(n, n, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    OutOfCoreArray dst(ctx, dir.path(), "dst", column_block(n, n, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    src.initialize(ctx, gen, n * 3);
    transpose(ctx, src, dst, n * 3);
    std::vector<double> global = dst.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * n + r)],
                           gen(c, r))
              << "expected transpose at (" << r << "," << c << ")";
        }
      }
    }
  });
}

TEST_P(TransposeTest, RectangularTransposeAcrossDistributions) {
  const int p = GetParam();
  const std::int64_t rows = 8;
  const std::int64_t cols = 12;
  TempDir dir;
  Machine machine(p, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    OutOfCoreArray src(ctx, dir.path(), "src", column_block(rows, cols, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    // Destination is cols x rows, row-block distributed.
    OutOfCoreArray dst(ctx, dir.path(), "dst", row_block(cols, rows, p),
                       StorageOrder::kColumnMajor, DiskModel::zero());
    src.initialize(ctx, gen, rows * 4);
    transpose(ctx, src, dst, rows * 4);
    std::vector<double> global = dst.gather_global(ctx, rows * cols);
    if (ctx.rank() == 0) {
      for (std::int64_t c = 0; c < rows; ++c) {    // dst cols = src rows
        for (std::int64_t r = 0; r < cols; ++r) {  // dst rows = src cols
          ASSERT_DOUBLE_EQ(global[static_cast<std::size_t>(c * cols + r)],
                           gen(c, r));
        }
      }
    }
  });
}

TEST(TransposeTest, ShapeMismatchRejected) {
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 OutOfCoreArray src(ctx, dir.path(), "s",
                                    column_block(8, 12, 2),
                                    StorageOrder::kColumnMajor,
                                    DiskModel::zero());
                 OutOfCoreArray dst(ctx, dir.path(), "d",
                                    column_block(8, 12, 2),
                                    StorageOrder::kColumnMajor,
                                    DiskModel::zero());
                 transpose(ctx, src, dst, 32);
               }),
               Error);
}

}  // namespace
}  // namespace oocc::runtime
