// Unit tests for oocc/util: errors, stats, tables, env parsing, RNG.
#include <gtest/gtest.h>

#include <cstdlib>

#include "oocc/util/env.hpp"
#include "oocc/util/error.hpp"
#include "oocc/util/rng.hpp"
#include "oocc/util/stats.hpp"
#include "oocc/util/table.hpp"

namespace oocc {
namespace {

TEST(ErrorTest, CarriesCodeAndMessage) {
  try {
    OOCC_THROW(ErrorCode::kIoError, "disk " << 3 << " on fire");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find("disk 3 on fire"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("IoError"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesOnTrueCondition) {
  EXPECT_NO_THROW(OOCC_CHECK(1 + 1 == 2, ErrorCode::kInvalidArgument, "no"));
}

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  try {
    OOCC_REQUIRE(false, "bad argument " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(ErrorTest, AssertReportsLocation) {
  try {
    OOCC_ASSERT(false, "invariant " << "broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRuntimeError);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, EveryCodeHasAName) {
  for (ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kOutOfRange,
        ErrorCode::kIoError, ErrorCode::kParseError, ErrorCode::kSemanticError,
        ErrorCode::kCompileError, ErrorCode::kRuntimeError,
        ErrorCode::kResourceExhausted}) {
    EXPECT_FALSE(error_code_name(code).empty());
    EXPECT_NE(error_code_name(code), "Unknown");
  }
}

TEST(StatsTest, EmptyAccumulator) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37 - 3.0;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatsTest, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty += nonempty
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // nonempty += empty
  EXPECT_EQ(a.count(), 2u);
}

TEST(TableTest, AlignsColumns) {
  TextTable t({"Slab Ratio", "4 Procs"});
  t.add_row({"1/8", "1045.84"});
  t.add_row({"1", "923.11"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Slab Ratio | 4 Procs"), std::string::npos);
  EXPECT_NE(out.find("1/8"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, RejectsAritymismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(TableTest, NumericRowFormatting) {
  TextTable t({"label", "x", "y"});
  t.add_numeric_row("row", {1.23456, 2.0}, 2);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("row,1.23,2.00"), std::string::npos);
}

TEST(TableTest, FormatRatio) {
  EXPECT_EQ(format_ratio(1, 8), "1/8");
  EXPECT_EQ(format_ratio(1, 1), "1");
  EXPECT_THROW(format_ratio(1, 0), Error);
}

TEST(EnvTest, IntFallbacks) {
  ::unsetenv("OOCC_TEST_INT");
  EXPECT_EQ(env_int("OOCC_TEST_INT", 7), 7);
  ::setenv("OOCC_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("OOCC_TEST_INT", 7), 42);
  ::setenv("OOCC_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(env_int("OOCC_TEST_INT", 7), 7);
  ::unsetenv("OOCC_TEST_INT");
}

TEST(EnvTest, Flags) {
  ::unsetenv("OOCC_TEST_FLAG");
  EXPECT_FALSE(env_flag("OOCC_TEST_FLAG"));
  ::setenv("OOCC_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("OOCC_TEST_FLAG"));
  ::setenv("OOCC_TEST_FLAG", "off", 1);
  EXPECT_FALSE(env_flag("OOCC_TEST_FLAG"));
  ::unsetenv("OOCC_TEST_FLAG");
}

TEST(EnvTest, IntList) {
  ::unsetenv("OOCC_TEST_LIST");
  EXPECT_EQ(env_int_list("OOCC_TEST_LIST", {4, 16}), (std::vector<int>{4, 16}));
  ::setenv("OOCC_TEST_LIST", "4,16,32,64", 1);
  EXPECT_EQ(env_int_list("OOCC_TEST_LIST", {}),
            (std::vector<int>{4, 16, 32, 64}));
  ::setenv("OOCC_TEST_LIST", "4,bogus", 1);
  EXPECT_EQ(env_int_list("OOCC_TEST_LIST", {1}), (std::vector<int>{1}));
  ::unsetenv("OOCC_TEST_LIST");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundsRespected) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RoughlyUniform) {
  Rng r(7);
  int buckets[10] = {};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    buckets[r.next_below(10)]++;
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, trials / 10, trials / 100);
  }
}

}  // namespace
}  // namespace oocc
