// Static verifier tests: a mutation harness proving every OOCC-V0xx
// diagnostic fires on a seeded broken program, an exhaustive clean pass
// over all shipped plan shapes (elementwise, fused chains, GAXPY, stencil
// at P = 1/3/4 with tight and roomy budgets), and the executor
// integration (unstamped plans verify by default, --no-verify escapes).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/verify.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/error.hpp"

namespace oocc::compiler {
namespace {

using exec::ArrayBindings;
using exec::ExecOptions;
using io::DiskModel;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

// ------------------------------------------------------------- fixtures

constexpr std::int64_t kRows = 10;
constexpr std::int64_t kCols = 20;

/// `y = x*2 + k` over column-block arrays; budget 0 = roomy default.
NodeProgram elementwise_plan(int nprocs, std::int64_t budget = 4096) {
  CompileOptions options;
  options.memory_budget_elements = budget;
  return compile_source(hpf::elementwise_source(kRows, kCols, nprocs, 2),
                        options);
}

NodeProgram gaxpy_plan(int nprocs, std::int64_t budget,
                       std::int64_t n = 24) {
  CompileOptions options;
  options.memory_budget_elements = budget;
  return compile_source(hpf::gaxpy_source(n, nprocs), options);
}

NodeProgram stencil_plan(int nprocs, std::int64_t budget,
                         std::int64_t n = 24) {
  CompileOptions options;
  options.memory_budget_elements = budget;
  return compile_source(hpf::stencil_source(n, nprocs), options);
}

/// A two-statement chain that fuses into one sweep writing y and z.
std::vector<NodeProgram> fused_plans(int nprocs, std::int64_t budget) {
  const std::string src =
      "      parameter (n=20, p=" + std::to_string(nprocs) +
      ")\n"
      "      real x(n,n), y(n,n), z(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y, z\n"
      "      forall (k=1:n)\n"
      "        y(1:n,k) = x(1:n,k)*2 + 1\n"
      "      end forall\n"
      "      forall (k=1:n)\n"
      "        z(1:n,k) = y(1:n,k) + k\n"
      "      end forall\n"
      "      end\n";
  CompileOptions options;
  options.memory_budget_elements = budget;
  return compile_sequence_source(src, options);
}

// ------------------------------------------------------- step mutation

Step* find_step(std::vector<Step>& steps, StepKind kind) {
  for (Step& s : steps) {
    if (s.kind == kind) {
      return &s;
    }
    if (Step* hit = find_step(s.body, kind)) {
      return hit;
    }
  }
  return nullptr;
}

Step* require_step(NodeProgram& plan, StepKind kind) {
  Step* step = find_step(plan.steps, kind);
  EXPECT_NE(step, nullptr) << "plan has no " << step_kind_name(kind);
  return step;
}

bool remove_step(std::vector<Step>& steps, StepKind kind) {
  for (auto it = steps.begin(); it != steps.end(); ++it) {
    if (it->kind == kind) {
      steps.erase(it);
      return true;
    }
    if (remove_step(it->body, kind)) {
      return true;
    }
  }
  return false;
}

/// The sweep body of the plan's first ForEachSlab (where the elementwise
/// and stencil mutations seed their breakage).
std::vector<Step>& sweep_body(NodeProgram& plan) {
  Step* sweep = require_step(plan, StepKind::kForEachSlab);
  return sweep->body;
}

bool has_code(const VerifyReport& report, const std::string& code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const VerifyDiagnostic& d) { return d.code == code; });
}

::testing::AssertionResult fires(const NodeProgram& plan,
                                 const std::string& code) {
  const VerifyReport report = verify_plan(plan);
  if (has_code(report, code)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "expected " << code << ", got:\n"
         << report.to_string();
}

// ------------------------------------------------------------ clean pass

struct CleanCase {
  int nprocs;
  bool tight;  ///< smallest budget the lowering accepts vs a roomy one
};

class VerifyClean : public ::testing::TestWithParam<CleanCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, VerifyClean,
    ::testing::Values(CleanCase{1, false}, CleanCase{1, true},
                      CleanCase{3, false}, CleanCase{3, true},
                      CleanCase{4, false}, CleanCase{4, true}),
    [](const ::testing::TestParamInfo<CleanCase>& info) {
      return std::string("p") + std::to_string(info.param.nprocs) +
             (info.param.tight ? "_tight" : "_roomy");
    });

TEST_P(VerifyClean, Elementwise) {
  const CleanCase& tc = GetParam();
  // Tight: exactly one full-height column per array share.
  const NodeProgram plan =
      elementwise_plan(tc.nprocs, tc.tight ? 2 * kRows : 4096);
  const VerifyReport report = verify_plan(plan);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.stats.ranks, tc.nprocs);
  EXPECT_TRUE(plan.verified);
}

TEST_P(VerifyClean, FusedChain) {
  const CleanCase& tc = GetParam();
  const std::vector<NodeProgram> plans =
      fused_plans(tc.nprocs, tc.tight ? 3 * 20 : 4096);
  const VerifyReport report = verify_sequence(
      std::span<const NodeProgram>(plans.data(), plans.size()));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(VerifyClean, Gaxpy) {
  const CleanCase& tc = GetParam();
  const std::int64_t n = 24;
  // The CLI's default: a quarter of the largest local array plus room for
  // the reduction temporary — genuinely out-of-core.
  const std::int64_t local =
      n * ((n + tc.nprocs - 1) / tc.nprocs);
  const NodeProgram plan =
      gaxpy_plan(tc.nprocs, tc.tight ? local / 4 + 4 * n : 2 * n * n, n);
  const VerifyReport report = verify_plan(plan);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.stats.ranks, tc.nprocs);
}

TEST_P(VerifyClean, Stencil) {
  const CleanCase& tc = GetParam();
  const std::int64_t n = 24;
  // Tight: w = budget/(4*local_rows) - d == 1, the narrowest legal sweep.
  const NodeProgram plan =
      stencil_plan(tc.nprocs, tc.tight ? 8 * n : 4096, n);
  const VerifyReport report = verify_plan(plan);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.stats.events, 0);
}

TEST(VerifyReportTest, CleanReportPrintsStats) {
  const VerifyReport report = verify_plan(elementwise_plan(3));
  const std::string text = report.to_string();
  EXPECT_NE(text.find("3 rank(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("OK"), std::string::npos) << text;
}

// ------------------------------------------------- structural mutations

TEST(VerifyMutationTest, V001UndeclaredLoop) {
  NodeProgram plan = elementwise_plan(1);
  require_step(plan, StepKind::kForEachSlab)->loop = "bogus";
  EXPECT_TRUE(fires(plan, "OOCC-V001"));
}

TEST(VerifyMutationTest, V002UnknownArray) {
  NodeProgram plan = elementwise_plan(1);
  require_step(plan, StepKind::kReadSlab)->array = "nosuch";
  EXPECT_TRUE(fires(plan, "OOCC-V002"));
}

TEST(VerifyMutationTest, V003StatementIndexOutOfRange) {
  NodeProgram plan = elementwise_plan(1);
  require_step(plan, StepKind::kComputeElementwise)->stmt = 99;
  EXPECT_TRUE(fires(plan, "OOCC-V003"));
}

TEST(VerifyMutationTest, V003DuplicateLoopDeclaration) {
  NodeProgram plan = elementwise_plan(1);
  plan.loops.push_back(plan.loops.front());
  EXPECT_TRUE(fires(plan, "OOCC-V003"));
}

TEST(VerifyMutationTest, V004SlabStepOutsideItsLoop) {
  NodeProgram plan = elementwise_plan(1);
  // Hoist the ReadSlab to the top level, outside any ForEachSlab.
  Step hoisted = *require_step(plan, StepKind::kReadSlab);
  plan.steps.push_back(hoisted);
  EXPECT_TRUE(fires(plan, "OOCC-V004"));
}

TEST(VerifyMutationTest, V005WriteOfUnstagedSlab) {
  NodeProgram plan = elementwise_plan(1);
  // Drop the compute: the WriteSlab now stores a slab nothing staged.
  ASSERT_TRUE(remove_step(plan.steps, StepKind::kComputeElementwise));
  EXPECT_TRUE(fires(plan, "OOCC-V005"));
}

// ------------------------------------------------------- race mutations

TEST(VerifyMutationTest, V010ReplicatedWriteRace) {
  NodeProgram plan = elementwise_plan(3);
  // Replicate the output: every rank now writes the full array, and the
  // cross-rank overlap is a genuine write-write race.
  PlanArray& y = plan.arrays.at("y");
  y.dist = hpf::ArrayDistribution(kRows, kCols, hpf::DistAxis::kNone,
                                  hpf::DistKind::kCollapsed, plan.nprocs);
  EXPECT_TRUE(fires(plan, "OOCC-V010"));
}

TEST(VerifyMutationTest, V011DroppedBarrierBeforeExchange) {
  NodeProgram plan = stencil_plan(3, 4096);
  // Without the trailing barrier the next sweep's ghost exchange reads
  // edge columns the neighbour is still writing.
  ASSERT_TRUE(remove_step(plan.steps, StepKind::kBarrier));
  EXPECT_TRUE(fires(plan, "OOCC-V011"));
}

TEST(VerifyMutationTest, V012HaloExchangeTooNarrow) {
  NodeProgram plan = stencil_plan(3, 4096);
  require_step(plan, StepKind::kExchangeHalo)->halo = 0;
  EXPECT_TRUE(fires(plan, "OOCC-V012"));
}

TEST(VerifyMutationTest, V012HaloReadTooNarrow) {
  NodeProgram plan = stencil_plan(3, 4096);
  require_step(plan, StepKind::kReadSlab)->halo = 0;
  EXPECT_TRUE(fires(plan, "OOCC-V012"));
}

// --------------------------------------- bounds and coverage mutations

TEST(VerifyMutationTest, V020ReadBeyondLocalExtent) {
  NodeProgram plan = elementwise_plan(3);
  // Shrink the input: the sweep (sized by the output) now reads columns
  // the input does not hold locally.
  plan.arrays.at("x").dist = hpf::column_block(kRows, kCols / 2, 3);
  EXPECT_TRUE(fires(plan, "OOCC-V020"));
}

TEST(VerifyMutationTest, V021WriteBeyondLocalExtent) {
  std::vector<NodeProgram> plans = fused_plans(3, 4096);
  ASSERT_FALSE(plans.empty());
  NodeProgram& plan = plans.front();
  ASSERT_GT(plan.statements.size(), 1u) << "chain did not fuse";
  // The sweep is sized by the first output; shrinking the second makes
  // its WriteSlab run off the end.
  plan.arrays.at("z").dist = hpf::column_block(20, 10, 3);
  EXPECT_TRUE(fires(plan, "OOCC-V021"));
}

TEST(VerifyMutationTest, V022DroppedWriteLeavesHole) {
  NodeProgram plan = elementwise_plan(3);
  ASSERT_TRUE(remove_step(plan.steps, StepKind::kWriteSlab));
  EXPECT_TRUE(fires(plan, "OOCC-V022"));
}

TEST(VerifyMutationTest, V023DuplicateWriteOverlaps) {
  NodeProgram plan = elementwise_plan(3);
  std::vector<Step>& body = sweep_body(plan);
  Step* write = find_step(body, StepKind::kWriteSlab);
  ASSERT_NE(write, nullptr);
  body.push_back(*write);
  EXPECT_TRUE(fires(plan, "OOCC-V023"));
}

// ---------------------------------------------------- budget mutations

TEST(VerifyMutationTest, V030HaloWiderThanBudget) {
  // Tight budget: one column slab per array fits exactly; widening the
  // read by 8 columns each side blows the pinned working set.
  NodeProgram plan = elementwise_plan(1, 3 * kRows);
  require_step(plan, StepKind::kReadSlab)->halo = 8;
  EXPECT_TRUE(fires(plan, "OOCC-V030"));
}

// -------------------------------------------------- schedule mutations

TEST(VerifyMutationTest, V040CollectiveCountDiverges) {
  // P=3 over 20 columns: locals are 7/7/6, and a budget of 7 full-height
  // columns (2 arrays, share 3) gives ranks 3/3/2 slabs. A barrier inside
  // the per-slab body then runs a different number of times per rank.
  NodeProgram plan = elementwise_plan(3, 7 * kRows);
  Step barrier;
  barrier.kind = StepKind::kBarrier;
  sweep_body(plan).push_back(barrier);
  EXPECT_TRUE(fires(plan, "OOCC-V040"));
}

TEST(VerifyMutationTest, V041ScribbledReuseDistance) {
  NodeProgram plan = elementwise_plan(1);
  require_step(plan, StepKind::kReadSlab)->reuse_distance = 1234.0;
  EXPECT_TRUE(fires(plan, "OOCC-V041"));
}

TEST(VerifyMutationTest, ReuseCheckCanBeDisabled) {
  NodeProgram plan = elementwise_plan(1);
  require_step(plan, StepKind::kReadSlab)->reuse_distance = 1234.0;
  VerifyOptions options;
  options.check_reuse = false;
  EXPECT_TRUE(verify_plan(plan, options).ok());
}

// ------------------------------------------------ compile/exec plumbing

TEST(VerifyIntegrationTest, CompileStampsVerifiedPlans) {
  EXPECT_TRUE(elementwise_plan(3).verified);
  CompileOptions options;
  options.memory_budget_elements = 4096;
  options.verify = false;
  EXPECT_FALSE(
      compile_source(hpf::elementwise_source(kRows, kCols, 1, 2), options)
          .verified);
}

TEST(VerifyIntegrationTest, VerifyOrThrowQuotesCodes) {
  NodeProgram plan = elementwise_plan(1);
  require_step(plan, StepKind::kReadSlab)->array = "nosuch";
  try {
    verify_or_throw(plan);
    FAIL() << "expected Error(kVerifyError)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kVerifyError);
    EXPECT_NE(std::string(e.what()).find("OOCC-V002"), std::string::npos)
        << e.what();
  }
}

TEST(VerifyIntegrationTest, ExecutorRejectsUnstampedBrokenPlan) {
  NodeProgram plan = elementwise_plan(2);
  std::vector<Step>& body = sweep_body(plan);
  Step* write = find_step(body, StepKind::kWriteSlab);
  ASSERT_NE(write, nullptr);
  body.push_back(*write);  // duplicate write: safe to run, invalid to keep
  plan.verified = false;

  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 auto arrays = exec::create_plan_arrays(
                     ctx, plan, dir.path(), DiskModel::zero());
                 arrays.at("x")->initialize(
                     ctx, [](std::int64_t, std::int64_t) { return 1.0; },
                     1024);
                 ArrayBindings bindings;
                 for (auto& [name, arr] : arrays) {
                   bindings[name] = arr.get();
                 }
                 exec::execute(ctx, plan, bindings);
               }),
               Error);
}

TEST(VerifyIntegrationTest, NoVerifyOptionSkipsTheCheck) {
  NodeProgram plan = elementwise_plan(2);
  std::vector<Step>& body = sweep_body(plan);
  Step* write = find_step(body, StepKind::kWriteSlab);
  ASSERT_NE(write, nullptr);
  body.push_back(*write);
  plan.verified = false;

  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays =
        exec::create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
    arrays.at("x")->initialize(
        ctx, [](std::int64_t, std::int64_t) { return 1.0; }, 1024);
    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    ExecOptions options;
    options.verify = false;
    exec::execute(ctx, plan, bindings, options);
  });
}

TEST(VerifyIntegrationTest, ExecutorRunsCleanUnstampedPlan) {
  NodeProgram plan = elementwise_plan(2);
  plan.verified = false;  // hand-built path: executor verifies, then runs

  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    auto arrays =
        exec::create_plan_arrays(ctx, plan, dir.path(), DiskModel::zero());
    arrays.at("x")->initialize(
        ctx, [](std::int64_t, std::int64_t) { return 1.0; }, 1024);
    ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::execute(ctx, plan, bindings);
  });
}

}  // namespace
}  // namespace oocc::compiler
