#!/usr/bin/env bash
# Keeps the docs/ tree honest. Two checks:
#
#   1. Every intra-repo markdown link in README.md and docs/**.md resolves
#      to an existing file (anchors are stripped; http(s) links ignored).
#   2. Every fenced code block in the docs preceded by a marker line
#
#         <!-- oocc-check: <oocc_compile arguments...> -->
#
#      is byte-identical to the stdout of running the freshly built
#      compiler driver with those arguments from the repo root. This is
#      what stops the --dump-plan snippets in docs/slab-ir.md from rotting
#      as the IR evolves.
#
# Usage: tools/check_docs.sh [-b path/to/oocc_compile] [--update]
#
#   -b BIN     compiler driver binary (default: build/tools/oocc_compile)
#   --update   regenerate the marked blocks in place instead of failing
#
# Exits nonzero on any broken link or stale snippet (CI's docs job).
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="build/tools/oocc_compile"
UPDATE=0
while [ $# -gt 0 ]; do
  case "$1" in
    -b) BIN="$2"; shift 2 ;;
    --update) UPDATE=1; shift ;;
    -h) sed -n '2,19p' "$0"; exit 0 ;;
    *) echo "check_docs.sh: unknown argument $1" >&2; exit 2 ;;
  esac
done

if [ ! -x "$BIN" ]; then
  echo "check_docs.sh: compiler driver not found at $BIN (build it, or pass -b)" >&2
  exit 1
fi

OOCC_BIN="$BIN" UPDATE="$UPDATE" python3 - <<'PYEOF'
import os
import re
import subprocess
import sys

bin_path = os.environ["OOCC_BIN"]
update = os.environ["UPDATE"] == "1"

docs = ["README.md"]
for root, _dirs, files in os.walk("docs"):
    for f in sorted(files):
        if f.endswith(".md"):
            docs.append(os.path.join(root, f))

failures = 0

# ---- 1. intra-repo links -------------------------------------------------
link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
for doc in docs:
    text = open(doc).read()
    base = os.path.dirname(doc)
    for target in link_re.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            print(f"{doc}: broken link -> {target}")
            failures += 1

# ---- 2. embedded oocc_compile output blocks ------------------------------
marker_re = re.compile(r"^<!--\s*oocc-check:\s*(.*?)\s*-->\s*$")
for doc in docs:
    lines = open(doc).read().splitlines(keepends=True)
    out_lines = []
    i = 0
    changed = False
    while i < len(lines):
        out_lines.append(lines[i])
        m = marker_re.match(lines[i].rstrip("\n"))
        if not m:
            i += 1
            continue
        args = m.group(1).split()
        # The fence must open on the next non-empty line.
        j = i + 1
        while j < len(lines) and lines[j].strip() == "":
            out_lines.append(lines[j])
            j += 1
        if j >= len(lines) or not lines[j].startswith("```"):
            print(f"{doc}: oocc-check marker not followed by a fenced block")
            failures += 1
            i = j
            continue
        fence = lines[j]
        k = j + 1
        while k < len(lines) and lines[k].rstrip("\n") != "```":
            k += 1
        if k >= len(lines):
            print(f"{doc}: unterminated fenced block after oocc-check")
            failures += 1
            i = j
            continue
        embedded = "".join(lines[j + 1:k])
        proc = subprocess.run([bin_path] + args, capture_output=True,
                              text=True)
        if proc.returncode != 0:
            print(f"{doc}: `oocc_compile {' '.join(args)}` exited "
                  f"{proc.returncode}:\n{proc.stderr}")
            failures += 1
            i = k + 1
            out_lines.extend(lines[j:k + 1])
            continue
        actual = proc.stdout
        if embedded != actual:
            if update:
                changed = True
            else:
                print(f"{doc}: stale snippet for `oocc_compile "
                      f"{' '.join(args)}` (run tools/check_docs.sh "
                      f"--update)")
                failures += 1
        out_lines.extend([fence, actual if update else embedded,
                          lines[k]])
        i = k + 1
    if update and changed:
        with open(doc, "w") as f:
            f.write("".join(out_lines))
        print(f"{doc}: snippets regenerated")

if failures:
    print(f"check_docs.sh: {failures} problem(s)")
    sys.exit(1)
print("check_docs.sh: all links resolve and all embedded snippets are "
      "current")
PYEOF
