// oocc-client — submit compile/run jobs to a running oocc-serve daemon.
//
//   oocc-client --socket <path> [options]
//
// Options:
//   --op compile|run       request kind (default compile)
//   --builtin NAME         gaxpy | elementwise | stencil (default gaxpy)
//   --n N --p P            builtin program size / processor count
//   --program <file>       send an HPF source file instead of a builtin
//   --memory N             per-processor compile budget (0 = server default)
//   --prefetch[=auto]      prefetch knob, like oocc-compile
//   --no-fuse              disable statement fusion
//   --iters K --tol X      stencil run controls
//   --reps R               send the request R times per tenant (default 1)
//   --tenants T            T concurrent tenant connections, named t0..tT-1
//                          (default 1); each sends R requests serially
//   --min-hit-rate X       exit nonzero unless cache_hit responses / total
//                          >= X (CI warm-cache assertion)
//   --stats                fetch and print server stats when done
//   --shutdown             send op=shutdown when done
//   --quiet                suppress per-response lines
//
// Exit status: 0 when every response was ok, every op=run response across
// all tenants and reps carried the same result_hash (bit-identity), and
// the hit-rate floor (if any) held; 1 otherwise.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "oocc/serve/json.hpp"
#include "oocc/util/error.hpp"

namespace {

using oocc::serve::Json;

void usage() {
  std::fprintf(stderr,
               "usage: oocc-client --socket PATH [--op compile|run] "
               "[--builtin NAME] [--n N] [--p P] [--program FILE] "
               "[--memory N] [--prefetch[=auto]] [--no-fuse] [--iters K] "
               "[--tol X] [--reps R] [--tenants T] [--min-hit-rate X] "
               "[--stats] [--shutdown] [--quiet]\n");
}

/// One connected Unix-domain socket with line-framed request/response.
class Conn {
 public:
  explicit Conn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    OOCC_CHECK(fd_ >= 0, oocc::ErrorCode::kIoError,
               "socket() failed: " << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    OOCC_CHECK(path.size() < sizeof(addr.sun_path),
               oocc::ErrorCode::kInvalidArgument,
               "socket path too long: " << path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    OOCC_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
               oocc::ErrorCode::kIoError,
               "connect(" << path << ") failed: " << std::strerror(errno));
  }
  ~Conn() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  void send_line(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      OOCC_CHECK(n > 0, oocc::ErrorCode::kIoError,
                 "send failed: " << std::strerror(errno));
      off += static_cast<std::size_t>(n);
    }
  }

  std::string recv_line() {
    std::size_t pos;
    while ((pos = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      OOCC_CHECK(n > 0, oocc::ErrorCode::kIoError,
                 "server closed the connection");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer_.substr(0, pos);
    buffer_.erase(0, pos + 1);
    return line;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string op = "compile";
  std::string builtin = "gaxpy";
  std::string program_file;
  std::int64_t n = 64;
  int p = 4;
  std::int64_t memory = 0;
  std::string prefetch = "off";
  bool fuse = true;
  int iters = 10;
  double tol = 0.0;
  int reps = 1;
  int tenants = 1;
  double min_hit_rate = -1.0;
  bool want_stats = false;
  bool want_shutdown = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(arg, "--op") == 0 && i + 1 < argc) {
      op = argv[++i];
    } else if (std::strcmp(arg, "--builtin") == 0 && i + 1 < argc) {
      builtin = argv[++i];
    } else if (std::strcmp(arg, "--program") == 0 && i + 1 < argc) {
      program_file = argv[++i];
    } else if (std::strcmp(arg, "--n") == 0 && i + 1 < argc) {
      n = std::atoll(argv[++i]);
    } else if (std::strcmp(arg, "--p") == 0 && i + 1 < argc) {
      p = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--memory") == 0 && i + 1 < argc) {
      memory = std::atoll(argv[++i]);
    } else if (std::strcmp(arg, "--prefetch") == 0) {
      prefetch = "on";
    } else if (std::strcmp(arg, "--prefetch=auto") == 0) {
      prefetch = "auto";
    } else if (std::strcmp(arg, "--no-fuse") == 0) {
      fuse = false;
    } else if (std::strcmp(arg, "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--tol") == 0 && i + 1 < argc) {
      tol = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--tenants") == 0 && i + 1 < argc) {
      tenants = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--min-hit-rate") == 0 && i + 1 < argc) {
      min_hit_rate = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(arg, "--shutdown") == 0) {
      want_shutdown = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
      return 2;
    }
  }
  if (socket_path.empty() || reps < 1 || tenants < 1) {
    usage();
    return 2;
  }

  std::string program;
  if (!program_file.empty()) {
    std::ifstream in(program_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", program_file.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    program = buffer.str();
  }

  std::signal(SIGPIPE, SIG_IGN);

  std::atomic<int> ok_count{0};
  std::atomic<int> error_count{0};
  std::atomic<int> hit_count{0};
  std::mutex mu;
  std::set<std::string> result_hashes;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t] {
      try {
        Conn conn(socket_path);
        for (int r = 0; r < reps; ++r) {
          Json req = Json::object();
          req.set("id", "t" + std::to_string(t) + "-" + std::to_string(r));
          req.set("tenant", "t" + std::to_string(t));
          req.set("op", op);
          if (!program.empty()) {
            req.set("program", program);
          } else {
            req.set("builtin", builtin);
            req.set("n", n);
            req.set("p", p);
          }
          if (memory > 0) {
            req.set("memory", memory);
          }
          req.set("prefetch", prefetch);
          req.set("fuse", fuse);
          req.set("iters", iters);
          req.set("tol", tol);
          conn.send_line(req.dump());
          const std::string line = conn.recv_line();
          const Json res = Json::parse(line);
          if (!quiet) {
            std::lock_guard<std::mutex> lock(mu);
            std::printf("%s\n", line.c_str());
          }
          if (res.get_bool("ok", false)) {
            ok_count.fetch_add(1);
            if (res.get_bool("cache_hit", false)) {
              hit_count.fetch_add(1);
            }
            const std::string hash = res.get_string("result_hash", "");
            if (!hash.empty()) {
              std::lock_guard<std::mutex> lock(mu);
              result_hashes.insert(hash);
            }
          } else {
            error_count.fetch_add(1);
            std::lock_guard<std::mutex> lock(mu);
            std::fprintf(stderr, "error response: %s\n", line.c_str());
          }
        }
      } catch (const oocc::Error& e) {
        error_count.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        std::fprintf(stderr, "tenant t%d: %s\n", t, e.what());
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (want_stats || want_shutdown) {
    try {
      Conn conn(socket_path);
      if (want_stats) {
        conn.send_line("{\"op\":\"stats\"}");
        std::printf("%s\n", conn.recv_line().c_str());
      }
      if (want_shutdown) {
        conn.send_line("{\"op\":\"shutdown\"}");
        std::printf("%s\n", conn.recv_line().c_str());
      }
    } catch (const oocc::Error& e) {
      std::fprintf(stderr, "control connection: %s\n", e.what());
      error_count.fetch_add(1);
    }
  }

  const int total = tenants * reps;
  const double hit_rate =
      total > 0 ? static_cast<double>(hit_count.load()) / total : 0.0;
  std::printf(
      "client: sent %d, ok %d, errors %d, cache hits %d (%.0f%%), distinct "
      "result hashes %zu, %.2fs, %.2f programs/s\n",
      total, ok_count.load(), error_count.load(), hit_count.load(),
      100.0 * hit_rate, result_hashes.size(), elapsed,
      elapsed > 0.0 ? total / elapsed : 0.0);

  if (error_count.load() != 0) {
    return 1;
  }
  if (op == "run" && result_hashes.size() > 1) {
    std::fprintf(stderr,
                 "bit-identity violation: %zu distinct result hashes\n",
                 result_hashes.size());
    return 1;
  }
  if (min_hit_rate >= 0.0 && hit_rate < min_hit_rate) {
    std::fprintf(stderr, "hit rate %.2f below floor %.2f\n", hit_rate,
                 min_hit_rate);
    return 1;
  }
  return 0;
}
