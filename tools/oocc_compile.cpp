// oocc-compile — command-line driver for the out-of-core HPF compiler.
//
//   oocc-compile <program.hpf> [options]
//   oocc-compile --stencil[=N[,P]] [options]
//
// Options:
//   --memory <elements>    per-processor ICLA budget (default 1/4 OCLA)
//   --equal-split          equal memory division instead of access-weighted
//   --no-access-reorg      disable Figure 14 orientation selection
//   --no-storage-reorg     disable on-disk storage reorganization
//   --no-fuse              disable inter-statement slab fusion
//   --prefetch             double-buffer the dominant array's slabs
//   --prefetch=auto        let price_steps + the disk model decide per plan
//   --no-prefetch          force synchronous slab reads (the default)
//   --opt=search           global plan search: enumerate slab sizes, memory
//                          shares, prefetch and fusion groupings, keep the
//                          min-priced verified plan (docs/plan-search.md)
//   --opt=heuristic        the per-statement local decisions (the default)
//   --search-passes <k>    --opt=search: coordinate-descent rounds (def. 2)
//   --dump-search          print the plan-search decision record (implies
//                          --opt=search): candidates priced, adopted knobs
//                          and the structured "not searchable" diagnostics
//   --no-cache             disable the runtime slab buffer pool (--run) —
//                          reproduces the pre-pool executor exactly
//   --no-async             disable the real async I/O engine (--run): all
//                          host I/O runs synchronously on the compute
//                          threads, bit-identically (OOCC_ASYNC=0 is the
//                          same knob via the environment)
//   --stencil[=N[,P]]      compile the bundled Jacobi halo-stencil program
//                          (hpf::stencil_source, default N=64 P=4) instead
//                          of reading a source file
//   --iters <k>            stencil --run: max Jacobi sweeps (default 10)
//   --tol <x>              stencil --run: stop when the global max |update|
//                          drops to x (default 0 = run all sweeps)
//   --hash                 print the canonical plan-cache key (the same
//                          PlanKey oocc-serve uses: program hash + compile
//                          knobs) and exit without compiling
//   --result-hash          with --run: print the FNV-1a fingerprint of the
//                          output arrays (serve::hash_named_array, the
//                          same fingerprint oocc-serve responses carry in
//                          "result_hash") so serve results can be checked
//                          bit-for-bit against a serial run
//   --ast                  print the parsed program and exit
//   --dump-plan            print the step-level slab-program IR and its
//                          step-walking I/O price (uncached and with the
//                          slab cache modelled) instead of pseudo-code
//   --dump-verify          print the static verifier's report (replay
//                          stats + any OOCC-V0xx diagnostics) for the
//                          compiled plans
//   --no-verify            skip the static verifier (compile- and
//                          run-time); mirrors the OOCC_NO_VERIFY env knob
//   --run                  execute the plan on the simulated machine
//   --verify               with --run: check the result against a serial
//                          reference (GAXPY and stencil plans)
//   --faults=<plan>        install a deterministic fault plan (see
//                          docs/fault-tolerance.md for the grammar);
//                          OOCC_FAULTS provides the same knob via the
//                          environment. Implies journaled write-back.
//   --checkpoint-every <k> stencil --run: checkpoint the ping-pong state
//                          every k sweeps and recover from crashes or
//                          exhausted retries by restarting from the last
//                          committed checkpoint
//   --restarts <n>         with --checkpoint-every: give up after n
//                          restarts (default 8)
//
// Prints the compilation decision report and the generated node program
// (Figure 9/12-style pseudo-code, or the raw step IR with --dump-plan).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include "oocc/apps/jacobi.hpp"
#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/compiler/search.hpp"
#include "oocc/compiler/verify.hpp"
#include "oocc/exec/checkpoint.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/gaxpy/gaxpy.hpp"
#include "oocc/hpf/parser.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/serve/hash.hpp"
#include "oocc/serve/job.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/faults.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: oocc-compile <program.hpf> [--memory N] "
               "[--equal-split] [--no-access-reorg] [--no-storage-reorg] "
               "[--no-fuse] [--prefetch[=auto]] [--no-prefetch] "
               "[--opt=search|heuristic] [--search-passes K] "
               "[--dump-search] "
               "[--no-cache] [--no-async] [--stencil[=N[,P]]] [--iters K] "
               "[--tol X] "
               "[--hash] [--result-hash] "
               "[--ast] [--dump-plan] [--dump-verify] [--no-verify] "
               "[--run] [--verify] [--faults=PLAN] [--checkpoint-every K] "
               "[--restarts N]\n");
}

// Deterministic input generators, shared with the compile server (serve/
// job.cpp) so a server run and a CLI run see bit-identical inputs.
double gen_a(std::int64_t r, std::int64_t c) {
  return oocc::serve::input_gen_a(r, c);
}

double gen_b(std::int64_t r, std::int64_t c) {
  return oocc::serve::input_gen_b(r, c);
}

/// Machine-greppable fault-tolerance counter line (soak.sh parses it).
void print_fault_line(const oocc::faults::FaultStats& stats,
                      const oocc::sim::RunReport& report, int restarts) {
  std::printf(
      "fault tolerance: injected %llu transient / %llu permanent / "
      "%llu crash; %llu retries, %llu recoveries, %d restarts\n",
      static_cast<unsigned long long>(stats.transient_injected),
      static_cast<unsigned long long>(stats.permanent_injected),
      static_cast<unsigned long long>(stats.crashes_injected),
      static_cast<unsigned long long>(report.total_retries()),
      static_cast<unsigned long long>(stats.recoveries), restarts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oocc;

  if (argc < 2) {
    usage();
    return 2;
  }

  std::string path;
  std::int64_t memory = 0;
  bool hash_only = false;
  bool result_hash = false;
  bool ast_only = false;
  bool dump_plan = false;
  bool dump_search = false;
  bool dump_verify = false;
  bool run = false;
  bool verify = false;
  bool use_cache = true;
  bool use_async = true;
  bool stencil = false;
  std::int64_t stencil_n = 64;
  int stencil_p = 4;
  int stencil_iters = 10;
  double stencil_tol = 0.0;
  std::string faults_text;
  int checkpoint_every = 0;
  int max_restarts = 8;
  compiler::CompileOptions options;
  options.disk = io::DiskModel::touchstone_delta_cfs();

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--memory") == 0 && i + 1 < argc) {
      memory = std::atoll(argv[++i]);
    } else if (std::strncmp(arg, "--stencil", 9) == 0 &&
               (arg[9] == '\0' || arg[9] == '=')) {
      stencil = true;
      if (arg[9] == '=') {
        char* end = nullptr;
        stencil_n = std::strtoll(arg + 10, &end, 10);
        if (end != nullptr && *end == ',') {
          stencil_p = std::atoi(end + 1);
        }
        if (stencil_n < 4 || stencil_p < 1) {
          std::fprintf(stderr, "bad --stencil=N,P: %s\n", arg);
          return 2;
        }
      }
    } else if (std::strcmp(arg, "--iters") == 0 && i + 1 < argc) {
      stencil_iters = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--tol") == 0 && i + 1 < argc) {
      stencil_tol = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--equal-split") == 0) {
      options.memory_strategy = compiler::MemoryStrategy::kEqualSplit;
    } else if (std::strcmp(arg, "--no-access-reorg") == 0) {
      options.enable_access_reorganization = false;
    } else if (std::strcmp(arg, "--no-storage-reorg") == 0) {
      options.enable_storage_reorganization = false;
    } else if (std::strcmp(arg, "--no-fuse") == 0) {
      options.enable_statement_fusion = false;
    } else if (std::strcmp(arg, "--prefetch") == 0) {
      options.prefetch = compiler::PrefetchMode::kOn;
    } else if (std::strcmp(arg, "--prefetch=auto") == 0) {
      options.prefetch = compiler::PrefetchMode::kAuto;
    } else if (std::strcmp(arg, "--no-prefetch") == 0) {
      options.prefetch = compiler::PrefetchMode::kOff;
    } else if (std::strcmp(arg, "--opt=search") == 0) {
      options.opt = compiler::OptMode::kSearch;
    } else if (std::strcmp(arg, "--opt=heuristic") == 0) {
      options.opt = compiler::OptMode::kHeuristic;
    } else if (std::strcmp(arg, "--search-passes") == 0 && i + 1 < argc) {
      options.search_passes = std::atoi(argv[++i]);
      if (options.search_passes < 1) {
        std::fprintf(stderr, "bad --search-passes: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--dump-search") == 0) {
      dump_search = true;
      options.opt = compiler::OptMode::kSearch;
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      use_cache = false;
    } else if (std::strcmp(arg, "--no-async") == 0) {
      use_async = false;
    } else if (std::strcmp(arg, "--hash") == 0) {
      hash_only = true;
    } else if (std::strcmp(arg, "--result-hash") == 0) {
      result_hash = true;
    } else if (std::strcmp(arg, "--ast") == 0) {
      ast_only = true;
    } else if (std::strcmp(arg, "--dump-plan") == 0) {
      dump_plan = true;
    } else if (std::strcmp(arg, "--dump-verify") == 0) {
      dump_verify = true;
    } else if (std::strcmp(arg, "--no-verify") == 0) {
      options.verify = false;
    } else if (std::strcmp(arg, "--run") == 0) {
      run = true;
    } else if (std::strcmp(arg, "--verify") == 0) {
      verify = true;
    } else if (std::strncmp(arg, "--faults=", 9) == 0) {
      faults_text = arg + 9;
    } else if (std::strcmp(arg, "--checkpoint-every") == 0 && i + 1 < argc) {
      checkpoint_every = std::atoi(argv[++i]);
      if (checkpoint_every < 1) {
        std::fprintf(stderr, "bad --checkpoint-every: %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(arg, "--restarts") == 0 && i + 1 < argc) {
      max_restarts = std::atoi(argv[++i]);
      if (max_restarts < 0) {
        std::fprintf(stderr, "bad --restarts: %s\n", argv[i]);
        return 2;
      }
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty() && !stencil) {
    usage();
    return 2;
  }

  // Fault injection: the explicit flag wins over OOCC_FAULTS. Installing
  // before default_exec_options() runs also switches journaling on.
  try {
    if (!faults_text.empty()) {
      faults::FaultInjector::instance().install(
          faults::FaultPlan::parse(faults_text));
    } else {
      faults::FaultInjector::instance().install_from_env();
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const bool faults_installed = faults::FaultInjector::instance().active();

  std::string source;
  if (stencil) {
    source = hpf::stencil_source(stencil_n, stencil_p);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  try {
    if (ast_only) {
      const hpf::Program program = hpf::parse(source);
      std::printf("%s", hpf::to_string(program).c_str());
      return 0;
    }

    const hpf::BoundProgram bound = hpf::analyze(hpf::parse(source));
    if (memory == 0) {
      // Default: a quarter of the largest local array, i.e. genuinely
      // out-of-core, plus room for the reduction temporary. The rule lives
      // in serve/hash.cpp so a budget-less server request lands on the
      // same cache key as the equivalent CLI invocation.
      memory = serve::default_memory_budget(bound);
    }
    options.memory_budget_elements = memory;

    if (hash_only) {
      // The canonical plan-cache key: what oocc-serve would store this
      // compile under. One line, greppable, stable across reformatting of
      // the source program.
      std::printf("%s\n", serve::make_plan_key(bound, options)
                              .to_string()
                              .c_str());
      return 0;
    }

    std::vector<compiler::NodeProgram> plans;
    if (options.opt == compiler::OptMode::kSearch) {
      // Call the searcher directly (rather than through compile_sequence's
      // dispatch) so --dump-search can render the decision record.
      compiler::SearchResult searched =
          compiler::search_sequence(bound, options);
      plans = std::move(searched.plans);
      if (dump_search) {
        std::printf(
            "=== plan search ===\n%s\n",
            compiler::search_report_text(searched.report).c_str());
      }
    } else {
      plans = compiler::compile_sequence(bound, options);
    }
    if (dump_verify) {
      const compiler::VerifyReport vreport = compiler::verify_sequence(
          std::span<const compiler::NodeProgram>(plans.data(), plans.size()));
      std::printf("=== static verification ===\n%s\n",
                  vreport.to_string().c_str());
    }
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (plans.size() > 1) {
        std::printf("--- plan %zu of %zu ---\n", i + 1, plans.size());
      }
      std::printf("=== decision report ===\n%s\n",
                  compiler::decision_report(plans[i]).c_str());
      if (dump_plan) {
        std::printf("=== step program ===\n%s",
                    compiler::step_program_text(plans[i]).c_str());
        std::printf("=== step I/O price (per processor 0) ===\n");
        for (const auto& [name, cost] : compiler::price_steps(plans[i])) {
          std::printf(
              "%s: reads %.0f req / %.0f elems, writes %.0f req / %.0f "
              "elems\n",
              name.c_str(), cost.read_requests, cost.elements_read,
              cost.write_requests, cost.elements_written);
        }
        std::printf("\n");
      } else {
        std::printf("=== node program ===\n%s\n",
                    compiler::pseudo_code(plans[i]).c_str());
      }
    }
    if (dump_plan) {
      // Sequence-level price with the executor's slab cache modelled: hits
      // are demand reads the pool serves from memory (cross-statement
      // reuse included).
      compiler::PriceOptions popts;
      popts.model_cache = true;
      const std::vector<compiler::PlanPrice> cached =
          compiler::price_sequence(
              std::span<const compiler::NodeProgram>(plans.data(),
                                                     plans.size()),
              0, popts);
      double hits = 0.0;
      double avoided = 0.0;
      double reqs = 0.0;
      double elems = 0.0;
      for (const compiler::PlanPrice& p : cached) {
        hits += p.cache_hits;
        avoided += p.elements_avoided;
        reqs += p.total_requests();
        elems += p.total_elements();
      }
      std::printf(
          "=== step I/O price with slab cache (sequence, processor 0) ===\n"
          "cache hits: %.0f, elements avoided: %.0f; charged: %.0f req / "
          "%.0f elems\n\n",
          hits, avoided, reqs, elems);
    }
    const compiler::NodeProgram& plan = plans.front();

    if (!run) {
      return 0;
    }

    if (checkpoint_every > 0 &&
        (plans.size() != 1 || plan.kind != compiler::ProgramKind::kStencil)) {
      std::fprintf(stderr,
                   "--checkpoint-every needs a single stencil program\n");
      return 2;
    }

    io::TempDir dir("oocc-cli");
    sim::Machine machine(plan.nprocs,
                         sim::MachineCostModel::touchstone_delta());
    std::vector<double> result;
    runtime::SlabCacheStats cache_stats;
    exec::StencilRunInfo stencil_info;
    std::uint64_t result_fingerprint = 0;
    std::mutex stats_mu;
    // Arrays never written by any statement are the pure inputs.
    std::set<std::string> outputs;
    for (const auto& pl : plans) {
      for (const auto& [name, pa] : pl.arrays) {
        if (pa.is_output) {
          outputs.insert(name);
        }
      }
    }
    // Combines --no-cache with OOCC_NO_CACHE; also gates the counter line
    // below, which must reflect whether the pool actually ran.
    exec::ExecOptions base_exec_options = exec::default_exec_options();
    base_exec_options.use_cache = base_exec_options.use_cache && use_cache;
    base_exec_options.async = base_exec_options.async && use_async;
    base_exec_options.verify = base_exec_options.verify && options.verify;
    sim::RunReport report;
    int restarts = 0;

    if (checkpoint_every > 0) {
      // Fault-tolerant stencil path: run under the checkpoint/restart
      // driver, then gather for verification in a separate clean region
      // (the injector targets the computation, not the oracle check).
      exec::RestartOptions ropts;
      ropts.exec = base_exec_options;
      ropts.exec.max_iters = stencil_iters;
      ropts.exec.residual_tol = stencil_tol;
      ropts.array_dir = dir.path();
      ropts.disk = options.disk;
      ropts.checkpoint_every = checkpoint_every;
      ropts.checkpoint_dir = dir.path() / "ckpt";
      ropts.max_restarts = max_restarts;
      ropts.initialize = [&](sim::SpmdContext& ctx,
                             const exec::ArrayBindings& bindings) {
        for (const auto& [name, arr] : bindings) {
          if (outputs.contains(name)) {
            // A cold restart must not see a crashed attempt's partial
            // sweeps: reset outputs to the fresh-file state.
            arr->laf().fill(ctx, 0.0);
          } else {
            arr->initialize(ctx, name == plan.b ? gen_b : gen_a, memory);
          }
        }
      };
      const exec::RestartRunInfo rr =
          exec::run_stencil_with_restart(machine, plan, ropts);
      report = rr.report;
      stencil_info = rr.stencil;
      restarts = rr.restarts;
      if (verify) {
        faults::FaultInjector& injector = faults::FaultInjector::instance();
        const faults::FaultStats snapshot = injector.stats();
        injector.clear();
        machine.run([&](sim::SpmdContext& ctx) {
          auto arrays = exec::create_plan_arrays(ctx, plan, dir.path(),
                                                 options.disk);
          std::vector<double> state =
              arrays.at(stencil_info.result)->gather_global(ctx, memory);
          if (ctx.rank() == 0) {
            result = std::move(state);
          }
        });
        print_fault_line(snapshot, report, restarts);
      } else if (faults_installed) {
        print_fault_line(faults::FaultInjector::instance().stats(), report,
                         restarts);
      }
    } else {
      report = machine.run([&](sim::SpmdContext& ctx) {
        auto arrays = exec::create_sequence_arrays(
            ctx,
            std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
            dir.path(), options.disk);
        // Initialize pure inputs: arrays never written by any statement.
        for (auto& [name, arr] : arrays) {
          if (!outputs.contains(name)) {
            arr->initialize(ctx, name == plan.b ? gen_b : gen_a, memory);
          }
        }
        sim::barrier(ctx);
        ctx.reset_accounting();
        exec::ArrayBindings bindings;
        for (auto& [name, arr] : arrays) {
          bindings[name] = arr.get();
        }
        exec::ExecOptions exec_options = base_exec_options;
        oocc::runtime::SlabCacheStats local_stats;
        exec_options.cache_stats = &local_stats;
        exec::StencilRunInfo local_info;
        exec_options.max_iters = stencil_iters;
        exec_options.residual_tol = stencil_tol;
        exec_options.stencil_info = &local_info;
        exec::execute_sequence(
            ctx,
            std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
            bindings, exec_options);
        {
          std::lock_guard<std::mutex> lock(stats_mu);
          cache_stats.merge(local_stats);
          if (!local_info.result.empty()) {
            stencil_info = local_info;  // allreduced: identical on every rank
          }
        }
        if (verify && plan.kind == compiler::ProgramKind::kGaxpy) {
          std::vector<double> c =
              arrays.at(plan.c)->gather_global(ctx, memory);
          if (ctx.rank() == 0) {
            result = std::move(c);
          }
        }
        if (verify && plan.kind == compiler::ProgramKind::kStencil) {
          std::vector<double> state =
              arrays.at(local_info.result)->gather_global(ctx, memory);
          if (ctx.rank() == 0) {
            result = std::move(state);
          }
        }
        if (result_hash) {
          // The serve-compatible output fingerprint: stencil plans hash the
          // live half of the ping-pong pair, everything else hashes every
          // pure output in sorted name order (collective: all ranks gather).
          std::vector<std::string> to_hash;
          if (plan.kind == compiler::ProgramKind::kStencil) {
            to_hash.push_back(local_info.result);
          } else {
            to_hash.assign(outputs.begin(), outputs.end());
          }
          std::uint64_t h = serve::kFnvOffsetBasis;
          for (const std::string& name : to_hash) {
            const std::vector<double> global =
                arrays.at(name)->gather_global(ctx, memory);
            if (ctx.rank() == 0) {
              h = serve::hash_named_array(name, global, h);
            }
          }
          if (ctx.rank() == 0) {
            std::lock_guard<std::mutex> lock(stats_mu);
            result_fingerprint = h;
          }
        }
      });
      if (faults_installed) {
        print_fault_line(faults::FaultInjector::instance().stats(), report,
                         restarts);
      }
    }

    std::printf("=== execution ===\n");
    std::printf("simulated time: %.3f s; wall: %.3f s\n",
                report.max_sim_time_s(), report.wall_time_s);
    std::printf("I/O: %llu requests, %.2f MB; messages: %llu\n",
                static_cast<unsigned long long>(report.total_io_requests()),
                static_cast<double>(report.total_io_bytes()) / 1e6,
                static_cast<unsigned long long>(report.total_messages()));
    if (report.async.enabled && report.async.jobs > 0) {
      std::printf(
          "async io: %d threads, %llu jobs, peak queue %llu; busy %.3f s, "
          "blocked %.3f s, overlap %.3f s wall\n",
          report.async.threads,
          static_cast<unsigned long long>(report.async.jobs),
          static_cast<unsigned long long>(report.async.max_queue_depth),
          report.async.busy_s, report.async.blocked_s,
          report.async.overlap_s);
    }
    if (base_exec_options.use_cache && checkpoint_every == 0) {
      std::printf(
          "slab cache: %llu hits, %llu misses, %llu evictions, %llu "
          "write-backs, %.2f MB avoided\n",
          static_cast<unsigned long long>(cache_stats.hits),
          static_cast<unsigned long long>(cache_stats.misses),
          static_cast<unsigned long long>(cache_stats.evictions),
          static_cast<unsigned long long>(cache_stats.writebacks),
          static_cast<double>(cache_stats.elements_hit) * 8.0 / 1e6);
    }

    if (result_hash && checkpoint_every == 0) {
      std::printf("result hash: 0x%016llx\n",
                  static_cast<unsigned long long>(result_fingerprint));
    }

    if (plan.kind == compiler::ProgramKind::kStencil) {
      std::printf(
          "stencil: %d sweep(s) run, final residual %.3g, result in '%s'\n",
          stencil_info.iterations, stencil_info.final_residual,
          stencil_info.result.c_str());
    }

    if (verify && plan.kind == compiler::ProgramKind::kGaxpy) {
      const std::int64_t n = plan.n;
      std::vector<double> da(static_cast<std::size_t>(n * n));
      std::vector<double> db(static_cast<std::size_t>(n * n));
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          da[static_cast<std::size_t>(c * n + r)] = gen_a(r, c);
          db[static_cast<std::size_t>(c * n + r)] = gen_b(r, c);
        }
      }
      const std::vector<double> want = gaxpy::serial_matmul(da, db, n);
      double max_err = 0.0;
      for (std::size_t i = 0; i < want.size(); ++i) {
        max_err = std::max(max_err, std::abs(want[i] - result[i]));
      }
      std::printf("verification: max |C - A*B| = %.3g -> %s\n", max_err,
                  max_err < 1e-9 ? "CORRECT" : "WRONG");
      return max_err < 1e-9 ? 0 : 1;
    }
    if (verify && plan.kind == compiler::ProgramKind::kStencil) {
      const std::vector<double> want = apps::serial_jacobi(
          plan.n, stencil_info.iterations, gen_a);
      double max_err = 0.0;
      for (std::size_t i = 0; i < want.size(); ++i) {
        max_err = std::max(max_err, std::abs(want[i] - result[i]));
      }
      std::printf("verification: max |jacobi - serial| = %.3g -> %s\n",
                  max_err, max_err == 0.0 ? "BIT-IDENTICAL" : "WRONG");
      return max_err == 0.0 ? 0 : 1;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
