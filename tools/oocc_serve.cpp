// oocc-serve — the plan-cache compile server daemon.
//
//   oocc-serve --socket <path> [options]
//   oocc-serve --stdio [options]
//
// Options:
//   --socket <path>   listen on a Unix-domain socket (newline-delimited
//                     JSON requests; see docs/serve.md for the schema)
//   --stdio           serve requests from stdin, responses to stdout — the
//                     same protocol without the socket (tests, one-shots)
//   --budget <elems>  global admission budget in elements fair-shared
//                     across tenants (default 4194304); a job's footprint
//                     is nprocs × its per-processor compile budget
//   --workers <n>     worker threads executing jobs (default: min(8,
//                     2×cores)); socket mode only — stdio is serial
//   --work-root <dir> root of the per-tenant LAF trees (default: a private
//                     temp dir removed on shutdown)
//
// The daemon exits after an op=shutdown request (or EOF in --stdio mode)
// and prints one "serve:" stats line on stderr. Process-global knobs
// (OOCC_ASYNC, OOCC_NO_VERIFY, OOCC_NO_CACHE, OOCC_JOURNAL,
// OOCC_IO_THREADS) are captured per request, at request scope — a queued
// job runs under the environment of its admission, not its execution.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "oocc/serve/server.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: oocc-serve (--socket PATH | --stdio) [--budget N] "
               "[--workers N] [--work-root DIR]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oocc;

  std::string socket_path;
  bool stdio = false;
  int workers = 0;
  serve::ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(arg, "--stdio") == 0) {
      stdio = true;
    } else if (std::strcmp(arg, "--budget") == 0 && i + 1 < argc) {
      options.total_budget_elements = std::atoll(argv[++i]);
    } else if (std::strcmp(arg, "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--work-root") == 0 && i + 1 < argc) {
      options.work_root = argv[++i];
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage();
      return 2;
    }
  }
  if (socket_path.empty() && !stdio) {
    usage();
    return 2;
  }

  // A client that disconnects mid-job must not kill the daemon via a write
  // to the dead socket (serve_socket also passes MSG_NOSIGNAL; this covers
  // any other stray pipe).
  std::signal(SIGPIPE, SIG_IGN);

  try {
    serve::Server server(options);
    if (stdio) {
      serve_stdio(server, std::cin, std::cout);
    } else {
      std::fprintf(stderr, "oocc-serve: listening on %s\n",
                   socket_path.c_str());
      const int connections =
          serve::serve_socket(server, socket_path, workers);
      std::fprintf(stderr, "oocc-serve: served %d connection(s)\n",
                   connections);
    }
    std::fprintf(stderr, "%s\n", server.stats_line().c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
