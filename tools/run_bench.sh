#!/usr/bin/env bash
# Runs the paper-table benches and emits a machine-readable BENCH_results.json.
#
# Usage: tools/run_bench.sh [-o results.json] [-b bench-bin-dir] [bench ...]
#
#   -o FILE   output JSON path (default: BENCH_results.json in the cwd)
#   -b DIR    directory holding the bench binaries (default:
#             $OOCC_BENCH_BIN_DIR, then ./bench, then ./build/bench)
#   bench...  bench names to run (default: the paper-table set below)
#
# Scale knobs are the benches' own environment variables (see
# bench/bench_common.hpp): OOCC_N, OOCC_PROCS, OOCC_FULL. OOCC_ROUTE_MODE
# (element|block) forces the runtime routing format for baseline captures;
# every bench records host wall time (the `wall_clock` column), and the
# routing benches additionally report simulated communication bytes per
# routing path. The async-overlap bench also honours OOCC_ASYNC,
# OOCC_IO_THREADS, OOCC_HOST_IO_DELAY_US and OOCC_BENCH_REPS; the emitted
# env dict records those plus the host CPU count and sanitizer mode, since
# wall-clock numbers only mean something relative to the machine. The
# serve_throughput bench reports a programs/sec column (cold compile vs
# warm plan-cache serving, plus multi-tenant execution) and honours
# OOCC_SERVE_REQS / OOCC_SERVE_REPS.
set -euo pipefail

OUT="BENCH_results.json"
BIN_DIR="${OOCC_BENCH_BIN_DIR:-}"

while getopts "o:b:h" opt; do
  case "$opt" in
    o) OUT="$OPTARG" ;;
    b) BIN_DIR="$OPTARG" ;;
    h) sed -n '2,19p' "$0"; exit 0 ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))

if [ -z "$BIN_DIR" ]; then
  for cand in bench build/bench; do
    if [ -x "$cand/table1_row_vs_col" ]; then BIN_DIR="$cand"; break; fi
  done
fi
if [ -z "$BIN_DIR" ] || [ ! -d "$BIN_DIR" ]; then
  echo "run_bench.sh: bench binary directory not found (build first, or pass -b)" >&2
  exit 1
fi

BENCHES=("$@")
if [ ${#BENCHES[@]} -eq 0 ]; then
  BENCHES=(table1_row_vs_col table2_memory_alloc fig10_slab_variation \
           two_phase_io redistribution fusion_chain cache_reuse \
           stencil_sweep async_overlap serve_throughput search_ablation)
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

for bench in "${BENCHES[@]}"; do
  bin="$BIN_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "run_bench.sh: skipping $bench (no binary at $bin)" >&2
    echo "missing" > "$WORK/$bench.status"
    continue
  fi
  echo "== $bench" >&2
  start="$(date +%s.%N)"
  rc=0
  "$bin" > "$WORK/$bench.out" 2> "$WORK/$bench.err" || rc=$?
  end="$(date +%s.%N)"
  echo "$rc" > "$WORK/$bench.status"
  echo "$start $end" > "$WORK/$bench.time"
  if [ "$rc" -ne 0 ]; then
    echo "run_bench.sh: $bench exited with $rc" >&2
    cat "$WORK/$bench.err" >&2 || true
  fi
done

python3 - "$WORK" "$OUT" "${BENCHES[@]}" <<'PYEOF'
"""Parse the captured bench output into BENCH_results.json.

Each bench prints `==== title ====` section headers and pipe-separated
TextTable blocks (header row, ----+---- rule, data rows); everything else is
kept as free-form notes (e.g. the "shape check ... OK" lines).
"""
import json
import os
import sys
import time

work, out_path, benches = sys.argv[1], sys.argv[2], sys.argv[3:]


def parse_tables(text):
    tables, notes = [], []
    title = None
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        stripped = line.strip()
        if stripped.startswith("====") and stripped.endswith("===="):
            title = stripped.strip("= ").strip()
            i += 1
            continue
        # A table block is a header line containing " | " followed by a rule.
        if " | " in line and i + 1 < len(lines) and \
                set(lines[i + 1].strip()) <= set("-+ ") and "-" in lines[i + 1]:
            header = [c.strip() for c in line.split("|")]
            rows = []
            i += 2
            while i < len(lines) and " | " in lines[i]:
                rows.append([c.strip() for c in lines[i].split("|")])
                i += 1
            tables.append({"title": title, "header": header, "rows": rows})
            continue
        if stripped:
            notes.append(stripped)
        i += 1
    return tables, notes


results = []
for bench in benches:
    status_path = os.path.join(work, bench + ".status")
    status = open(status_path).read().strip() if os.path.exists(status_path) else "missing"
    entry = {"name": bench}
    if status == "missing":
        entry["status"] = "missing"
        results.append(entry)
        continue
    entry["exit_code"] = int(status)
    entry["status"] = "ok" if status == "0" else "failed"
    time_path = os.path.join(work, bench + ".time")
    if os.path.exists(time_path):
        start, end = open(time_path).read().split()
        # Both names carry the host wall clock of the whole bench process:
        # wall_time_s is the historical key, wall_clock the column shared
        # with the async-overlap comparisons (schema v2).
        entry["wall_time_s"] = round(float(end) - float(start), 3)
        entry["wall_clock"] = entry["wall_time_s"]
    text = open(os.path.join(work, bench + ".out")).read()
    entry["tables"], entry["notes"] = parse_tables(text)
    results.append(entry)

env = {k: os.environ.get(k)
       for k in ("OOCC_N", "OOCC_PROCS", "OOCC_FULL", "OOCC_ROUTE_MODE",
                 "OOCC_NO_VERIFY", "OOCC_ASYNC", "OOCC_IO_THREADS",
                 "OOCC_HOST_IO_DELAY_US", "OOCC_BENCH_REPS")
       if os.environ.get(k) is not None}
# Wall-clock comparisons (the async_overlap rows in particular) are only
# interpretable against the host that produced them.
env["cpu_count"] = os.cpu_count()
env["sanitizer"] = os.environ.get("OOCC_SANITIZE", "none")

doc = {
    "schema": "oocc-bench-results/v2",
    "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "env": env,
    # Benches compile through compiler::compile(), which statically
    # verifies every plan by default — a run with OOCC_NO_VERIFY unset
    # measured verified plans (verification is compile-time only; stamped
    # plans are never re-checked during the timed sweeps).
    "verified_plans": os.environ.get("OOCC_NO_VERIFY") is None,
    "benches": results,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

ok = sum(1 for r in results if r.get("status") == "ok")
print(f"run_bench.sh: {ok}/{len(results)} benches ok -> {out_path}", file=sys.stderr)
sys.exit(0 if ok == len(results) else 1)
PYEOF
