#!/usr/bin/env bash
# End-to-end smoke of the compile server (CI's serve-smoke job).
#
# Starts oocc_serve on a private Unix socket, drives it with a
# multi-tenant oocc_client matrix, and asserts:
#   * every response ok, bit-identical result hashes across tenants/reps
#     (the client exits nonzero on divergence);
#   * >= 90% cache hit rate on the repeat workload (--min-hit-rate 0.9);
#   * the daemon shuts down cleanly on op=shutdown (exit 0, socket gone).
#
# Usage: tools/serve_smoke.sh [-b build/tools]
#
#   -b DIR   directory holding oocc_serve + oocc_client
#            (default: build/tools)
set -euo pipefail

BIN_DIR="build/tools"
while getopts "b:h" opt; do
  case "$opt" in
    b) BIN_DIR="$OPTARG" ;;
    h) sed -n '2,14p' "$0"; exit 0 ;;
    *) exit 2 ;;
  esac
done

SERVE="$BIN_DIR/oocc_serve"
CLIENT="$BIN_DIR/oocc_client"
for bin in "$SERVE" "$CLIENT"; do
  if [ ! -x "$bin" ]; then
    echo "serve_smoke.sh: missing binary $bin (build oocc_serve oocc_client first)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
SOCK="$WORK/serve.sock"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVE" --socket "$SOCK" --budget $((1 << 14)) --work-root "$WORK/laf" \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.05
done
[ -S "$SOCK" ] || { echo "serve_smoke.sh: daemon never opened $SOCK" >&2;
                    cat "$WORK/serve.log" >&2; exit 1; }

echo "== compile matrix: repeat workload must be >= 90% cache hits" >&2
"$CLIENT" --socket "$SOCK" --op compile --builtin gaxpy --n 64 --p 4 \
  --tenants 2 --reps 10 --min-hit-rate 0.9 --quiet
"$CLIENT" --socket "$SOCK" --op compile --builtin stencil --n 48 --p 2 \
  --tenants 2 --reps 10 --min-hit-rate 0.9 --quiet

echo "== run matrix: 3 tenants x 4 reps, shared budget, bit-identity" >&2
"$CLIENT" --socket "$SOCK" --op run --builtin stencil --n 64 --p 2 \
  --memory 1024 --iters 4 --tenants 3 --reps 4 --min-hit-rate 0.9 --quiet
"$CLIENT" --socket "$SOCK" --op run --builtin gaxpy --n 24 --p 3 \
  --memory 512 --tenants 2 --reps 3 --quiet

echo "== stats + clean shutdown" >&2
"$CLIENT" --socket "$SOCK" --op ping --stats --shutdown --quiet

rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
if [ "$rc" -ne 0 ]; then
  echo "serve_smoke.sh: daemon exited with $rc" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi
if [ -S "$SOCK" ]; then
  echo "serve_smoke.sh: socket file left behind after shutdown" >&2
  exit 1
fi
grep "serve:" "$WORK/serve.log" >&2 || true
echo "serve_smoke.sh: OK" >&2
