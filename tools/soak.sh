#!/usr/bin/env bash
# Fault soak: runs the fault-tolerant Jacobi driver across a matrix of
# deterministic fault schedules and asserts every run either completes
# BIT-IDENTICAL to the serial reference or fails with a structured
# `error:` diagnostic — never hangs, never prints WRONG.
#
# Usage: tools/soak.sh [-o results.json] [-b oocc_compile-path] [-t secs]
#
#   -o FILE   machine-readable results JSON (default: SOAK_results.json)
#   -b BIN    driver binary (default: $OOCC_COMPILE_BIN, then
#             ./build/tools/oocc_compile)
#   -t SECS   per-run timeout (default: 120)
#
# The schedule matrix is fixed (seeded p-mode plans plus deterministic
# nth/crash plans at every injection site), so CI runs are reproducible;
# per-run fault/retry/recovery/restart counters land in the JSON.
set -euo pipefail

OUT="SOAK_results.json"
BIN="${OOCC_COMPILE_BIN:-}"
TIMEOUT_S=120

while getopts "o:b:t:h" opt; do
  case "$opt" in
    o) OUT="$OPTARG" ;;
    b) BIN="$OPTARG" ;;
    t) TIMEOUT_S="$OPTARG" ;;
    h) sed -n '2,17p' "$0"; exit 0 ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))

if [ -z "$BIN" ]; then
  BIN="./build/tools/oocc_compile"
fi
if [ ! -x "$BIN" ]; then
  echo "soak.sh: driver binary not found at $BIN (build first, or pass -b)" >&2
  exit 1
fi

# Fixed schedule matrix. Three groups:
#   - recoverable: transient faults masked by retry, crashes and budget
#     failures recovered via the write-back journal + checkpoint/restart;
#     the run MUST exit 0 and print BIT-IDENTICAL.
#   - fatal: permanent faults past the retry/restart budget; the run MUST
#     exit non-zero with a structured `error:` line (and never WRONG).
#   - the seed sweep: probabilistic plans over a seed matrix, recoverable
#     by construction (transient kinds only).
RECOVERABLE=(
  "read:nth=1"
  "read:nth=7"
  "write:nth=5"
  "write:nth=11"
  "collective:nth=2,rank=1"
  "collective:nth=9,rank=3"
  "budget:nth=1"
  "crash:at=shadow,rank=0,nth=2"
  "crash:at=apply,rank=0,nth=2"
  "crash:at=apply,rank=0,nth=8"
  "crash:at=apply,rank=2,nth=5;read:nth=3"
)
# Fatal plans must keep firing across restart attempts (p-mode); a bare
# nth spec is consumed by its first injection and recovers via restart.
FATAL=(
  "read:p=1.0,seed=1,kind=permanent"
  "collective:p=1.0,seed=2,rank=0,kind=permanent"
)
SEEDS=(1 2 3 5 8 13 21 34)
for seed in "${SEEDS[@]}"; do
  RECOVERABLE+=("read:p=0.02,seed=$seed;write:p=0.02,seed=$((seed + 100))")
  RECOVERABLE+=("collective:p=0.01,seed=$seed;crash:at=apply,rank=$((seed % 4)),nth=$((seed % 7 + 2))")
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

run_one() {
  # run_one <index> <expect: recover|fail> <plan>
  local idx="$1" expect="$2" plan="$3"
  local out="$WORK/run$idx.out" rc=0
  timeout "$TIMEOUT_S" "$BIN" --stencil=48,4 --memory 1024 --iters 6 \
    --checkpoint-every 2 --restarts 10 --faults="$plan" --run --verify \
    > "$out" 2>&1 || rc=$?
  local verdict="fail"
  if [ "$rc" -eq 124 ]; then
    verdict="hang"
  elif grep -q "WRONG" "$out"; then
    verdict="corrupt"
  elif [ "$rc" -eq 0 ] && grep -q "BIT-IDENTICAL" "$out"; then
    verdict="identical"
  elif [ "$rc" -ne 0 ] && grep -q "^error:" "$out"; then
    verdict="structured-error"
  fi
  local ok=0
  case "$expect:$verdict" in
    recover:identical | fail:structured-error) ok=1 ;;
  esac
  local counters
  counters="$(grep "^fault tolerance:" "$out" | tail -1 || true)"
  printf '%s\t%s\t%s\t%s\t%s\t%s\n' \
    "$idx" "$ok" "$rc" "$expect" "$verdict" "$counters" >> "$WORK/results.tsv"
  printf '%s\n' "$plan" > "$WORK/run$idx.plan"
  if [ "$ok" -ne 1 ]; then
    echo "soak.sh: FAIL [$expect -> $verdict, rc=$rc] plan: $plan" >&2
    tail -5 "$out" >&2 || true
  else
    echo "soak.sh: ok [$verdict] plan: $plan" >&2
  fi
}

: > "$WORK/results.tsv"
i=0
for plan in "${RECOVERABLE[@]}"; do
  run_one "$i" recover "$plan"
  i=$((i + 1))
done
for plan in "${FATAL[@]}"; do
  run_one "$i" fail "$plan"
  i=$((i + 1))
done

python3 - "$WORK" "$OUT" <<'PYEOF'
"""Fold the per-run soak results into SOAK_results.json."""
import json
import os
import re
import sys
import time

work, out_path = sys.argv[1], sys.argv[2]
counter_re = re.compile(
    r"fault tolerance: injected (\d+) transient / (\d+) permanent / "
    r"(\d+) crash; (\d+) retries, (\d+) recoveries, (\d+) restarts")

runs = []
with open(os.path.join(work, "results.tsv")) as f:
    for line in f:
        idx, ok, rc, expect, verdict, counters = line.rstrip("\n").split("\t")
        plan = open(os.path.join(work, f"run{idx}.plan")).read().strip()
        entry = {
            "plan": plan,
            "expect": expect,
            "verdict": verdict,
            "exit_code": int(rc),
            "ok": ok == "1",
        }
        m = counter_re.search(counters)
        if m:
            keys = ("transient_injected", "permanent_injected",
                    "crashes_injected", "retries", "recoveries", "restarts")
            entry["counters"] = dict(zip(keys, map(int, m.groups())))
        runs.append(entry)

ok = sum(1 for r in runs if r["ok"])
doc = {
    "schema": "oocc-soak-results/v1",
    "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "total": len(runs),
    "passed": ok,
    "hangs": sum(1 for r in runs if r["verdict"] == "hang"),
    "corruptions": sum(1 for r in runs if r["verdict"] == "corrupt"),
    "runs": runs,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"soak.sh: {ok}/{len(runs)} fault schedules ok -> {out_path}",
      file=sys.stderr)
sys.exit(0 if ok == len(runs) else 1)
PYEOF
