#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# repeat the test pass in an ASan/UBSan build. Used by CI and by hand:
#
#   tools/verify.sh            # plain + sanitizer pass
#   OOCC_SKIP_ASAN=1 tools/verify.sh   # plain pass only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

# Static-verifier smoke: every shipped program shape must verify clean
# (verification is on by default in the driver; these fail nonzero on any
# OOCC-V0xx diagnostic). Cheap enough to run in both CI and by hand.
echo "=== static verifier smoke: --dump-verify over the doc examples ==="
for prog in docs/examples/*.hpf; do
  ./build/tools/oocc_compile "$prog" --memory 2048 --dump-verify > /dev/null
done
./build/tools/oocc_compile --stencil=64,4 --dump-verify > /dev/null
echo "verifier smoke: all shapes verify clean"

if [ -n "${OOCC_SKIP_ASAN:-}" ]; then
  echo "=== skipping sanitizer pass (OOCC_SKIP_ASAN set) ==="
  exit 0
fi

echo "=== sanitizer pass: ASan/UBSan build + ctest ==="
cmake -B build-asan -S . -DOOCC_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== verify.sh: all passes green ==="
