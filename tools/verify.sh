#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# repeat the test pass in an ASan/UBSan build. Used by CI and by hand:
#
#   tools/verify.sh            # plain + sanitizer pass
#   OOCC_SKIP_ASAN=1 tools/verify.sh   # plain pass only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [ -n "${OOCC_SKIP_ASAN:-}" ]; then
  echo "=== skipping sanitizer pass (OOCC_SKIP_ASAN set) ==="
  exit 0
fi

echo "=== sanitizer pass: ASan/UBSan build + ctest ==="
cmake -B build-asan -S . -DOOCC_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "=== verify.sh: all passes green ==="
